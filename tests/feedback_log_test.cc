// Feedback-log corruption battery (DESIGN.md §16), mirroring the wire
// protocol's tests/wire_test.cc discipline for the on-disk stream.
//
// The framing contract under attack: a frame that is merely incomplete
// (a producer mid-append) must classify as kPending and never as
// corruption; a frame that is provably corrupt — bad magic, version,
// type, reserved bits, hostile length, CRC mismatch — must classify as
// kBad; and the StreamIngester tailing a log with injected garbage must
// skip each corrupt region exactly once (uae.learn.ingest.bad_frames),
// recover every intact frame, and never crash. The corruption corpus is
// seeded, so a failure reproduces byte for byte.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "gtest/gtest.h"
#include "learn/feedback_log.h"
#include "learn/ingest.h"
#include "nn/serialize.h"

namespace uae::learn {
namespace {

bool BitsEq(float a, float b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

/// A record whose encoded bytes contain no 'U','A','E','L' runs, so a
/// single bit flip can never mint a spurious magic inside the payload
/// and confuse the resync assertions below.
FeedbackRecord MakeRecord(int salt) {
  FeedbackRecord record;
  record.user = salt;
  record.song = salt * 3 + 1;
  record.hour = static_cast<int16_t>(salt % 24);
  record.weekday = static_cast<int16_t>(salt % 7);
  record.action = static_cast<uint8_t>(salt % 6);
  record.alpha_hat = 0.5f + 0.001f * static_cast<float>(salt % 100);
  record.snapshot_version = static_cast<uint64_t>(7 + salt);
  record.request_id = static_cast<uint64_t>(1000 + salt);
  record.step = salt % 15;
  record.timestamp_us = 1000000 + salt;
  return record;
}

std::string EncodeOne(const FeedbackRecord& record) {
  std::string frame;
  EncodeFeedbackFrame(record, &frame);
  return frame;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

void AppendFile(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "";
  std::string bytes;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(file);
  return bytes;
}

TEST(FeedbackFrame, RoundTripsEveryFieldBitExactly) {
  FeedbackRecord record;
  record.user = 123456789;
  record.song = -7;  // Hostile on purpose; the codec must not "fix" it.
  record.hour = 23;
  record.weekday = 6;
  record.action = 5;
  record.alpha_hat = 0.12345678f;
  record.snapshot_version = 0xdeadbeefcafe1234ULL;
  record.request_id = 0xffffffffffffffffULL;
  record.step = 2147483647;
  record.timestamp_us = -42;
  const std::string frame = EncodeOne(record);
  EXPECT_EQ(frame.size(), kFeedbackFrameSize);

  FeedbackRecord decoded;
  size_t frame_size = 0;
  const FrameParse parse = ParseFeedbackFrame(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size(), &decoded,
      &frame_size);
  ASSERT_EQ(parse, FrameParse::kOk);
  EXPECT_EQ(frame_size, kFeedbackFrameSize);
  EXPECT_EQ(decoded.user, record.user);
  EXPECT_EQ(decoded.song, record.song);
  EXPECT_EQ(decoded.hour, record.hour);
  EXPECT_EQ(decoded.weekday, record.weekday);
  EXPECT_EQ(decoded.action, record.action);
  EXPECT_TRUE(BitsEq(decoded.alpha_hat, record.alpha_hat));
  EXPECT_EQ(decoded.snapshot_version, record.snapshot_version);
  EXPECT_EQ(decoded.request_id, record.request_id);
  EXPECT_EQ(decoded.step, record.step);
  EXPECT_EQ(decoded.timestamp_us, record.timestamp_us);
}

TEST(FeedbackFrame, EncodingIsDeterministic) {
  const FeedbackRecord record = MakeRecord(17);
  EXPECT_EQ(EncodeOne(record), EncodeOne(record));
}

TEST(FeedbackFrameCorruption, EveryTruncationIsPendingNeverBad) {
  // A producer may be mid-append at any byte: every proper prefix of a
  // valid frame is a valid prefix, so the tailer must wait, not resync.
  const std::string frame = EncodeOne(MakeRecord(1));
  for (size_t len = 0; len < frame.size(); ++len) {
    FeedbackRecord decoded;
    size_t frame_size = 0;
    const FrameParse parse = ParseFeedbackFrame(
        reinterpret_cast<const uint8_t*>(frame.data()), len, &decoded,
        &frame_size);
    EXPECT_EQ(parse, FrameParse::kPending) << "truncation at " << len;
  }
}

TEST(FeedbackFrameCorruption, EverySingleBitFlipIsRejected) {
  // The CRC covers header AND payload, so every bit is load-bearing.
  // Flipping one may only ever produce kBad — or kPending when the flip
  // landed in the length field and the inflated claim makes the frame
  // look incomplete (a later CRC check rejects it once "enough" bytes
  // arrive); it must NEVER decode as a valid record.
  const std::string frame = EncodeOne(MakeRecord(2));
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FeedbackRecord decoded;
      size_t frame_size = 0;
      const FrameParse parse = ParseFeedbackFrame(
          reinterpret_cast<const uint8_t*>(corrupt.data()), corrupt.size(),
          &decoded, &frame_size);
      ASSERT_NE(parse, FrameParse::kOk)
          << "bit " << bit << " of byte " << byte << " accepted";
      if (parse == FrameParse::kPending) {
        EXPECT_GE(byte, 8u) << "pending outside the length field";
        EXPECT_LT(byte, 12u) << "pending outside the length field";
      }
    }
  }
}

TEST(FeedbackFrameCorruption, HostileLengthRejectedBeforeAllocation) {
  // A frame *claiming* a huge payload is bounced on the length bound
  // alone — before the claim sizes any read, wait, or allocation. That
  // includes lengths far beyond the bytes actually present: hostile is
  // rejected now, not "pending more data".
  const std::string frame = EncodeOne(MakeRecord(3));
  for (const uint32_t lie :
       {kFeedbackMaxPayload + 1, 0xffffffffu,
        static_cast<uint32_t>(1) << 30}) {
    std::string corrupt = frame;
    corrupt[8] = static_cast<char>(lie);
    corrupt[9] = static_cast<char>(lie >> 8);
    corrupt[10] = static_cast<char>(lie >> 16);
    corrupt[11] = static_cast<char>(lie >> 24);
    FeedbackRecord decoded;
    size_t frame_size = 0;
    const FrameParse parse = ParseFeedbackFrame(
        reinterpret_cast<const uint8_t*>(corrupt.data()), corrupt.size(),
        &decoded, &frame_size);
    EXPECT_EQ(parse, FrameParse::kBad) << "hostile length " << lie;
  }
}

TEST(FeedbackFrameCorruption, CrcValidForeignPayloadSizeIsRejected) {
  // A CRC-*valid* frame whose payload is not the record encoding this
  // reader knows (a future stream revision, or a deliberate confusion
  // attack) is still corrupt from this reader's point of view.
  std::string frame;
  frame.push_back('U');
  frame.push_back('A');
  frame.push_back('E');
  frame.push_back('L');
  frame.push_back(static_cast<char>(kFeedbackVersion));
  frame.push_back(static_cast<char>(kFeedbackFrameRecord));
  frame.push_back(0);
  frame.push_back(0);
  const uint32_t payload_len = 10;  // <= max, != kFeedbackPayloadSize.
  frame.push_back(static_cast<char>(payload_len));
  frame.push_back(static_cast<char>(payload_len >> 8));
  frame.push_back(static_cast<char>(payload_len >> 16));
  frame.push_back(static_cast<char>(payload_len >> 24));
  frame.append(payload_len, '\x5a');
  const uint32_t crc = nn::Crc32(frame.data(), frame.size());
  frame.push_back(static_cast<char>(crc));
  frame.push_back(static_cast<char>(crc >> 8));
  frame.push_back(static_cast<char>(crc >> 16));
  frame.push_back(static_cast<char>(crc >> 24));

  FeedbackRecord decoded;
  size_t frame_size = 0;
  EXPECT_EQ(ParseFeedbackFrame(
                reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                &decoded, &frame_size),
            FrameParse::kBad);
}

TEST(FeedbackFrameCorruption, HeaderFieldChecksAreIndividuallyBad) {
  const std::string base = EncodeOne(MakeRecord(4));
  const auto parse_of = [](std::string frame) {
    FeedbackRecord decoded;
    size_t frame_size = 0;
    return ParseFeedbackFrame(
        reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
        &decoded, &frame_size);
  };
  for (size_t magic_byte = 0; magic_byte < 4; ++magic_byte) {
    std::string corrupt = base;
    corrupt[magic_byte] = 'X';
    EXPECT_EQ(parse_of(corrupt), FrameParse::kBad);
    // Same flaw visible from a one-byte read: a first byte that can
    // never start a frame is bad immediately, not pending.
    if (magic_byte == 0) {
      FeedbackRecord decoded;
      size_t frame_size = 0;
      EXPECT_EQ(ParseFeedbackFrame(
                    reinterpret_cast<const uint8_t*>(corrupt.data()), 1,
                    &decoded, &frame_size),
                FrameParse::kBad);
    }
  }
  {
    std::string corrupt = base;
    corrupt[4] = static_cast<char>(kFeedbackVersion + 1);
    EXPECT_EQ(parse_of(corrupt), FrameParse::kBad);
  }
  {
    std::string corrupt = base;
    corrupt[5] = 99;  // Unknown frame type.
    EXPECT_EQ(parse_of(corrupt), FrameParse::kBad);
  }
  {
    std::string corrupt = base;
    corrupt[6] = 1;  // Reserved bits set.
    EXPECT_EQ(parse_of(corrupt), FrameParse::kBad);
  }
}

TEST(FeedbackFrameCorruption, SeededMultiBitCorpusNeverDecodes) {
  const std::string frame = EncodeOne(MakeRecord(5));
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupt = frame;
    const int edits = 1 + static_cast<int>(rng.UniformInt(8));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(corrupt.size())));
      const char value = static_cast<char>(rng.UniformInt(256));
      changed = changed || corrupt[pos] != value;
      corrupt[pos] = value;
    }
    if (!changed) continue;
    FeedbackRecord decoded;
    size_t frame_size = 0;
    const FrameParse parse = ParseFeedbackFrame(
        reinterpret_cast<const uint8_t*>(corrupt.data()), corrupt.size(),
        &decoded, &frame_size);
    ASSERT_NE(parse, FrameParse::kOk) << "trial " << trial << " accepted";
  }
}

// ---- The ingester under the same attacks ----------------------------

class IngesterCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/feedback_corruption.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(IngesterCorruptionTest, GarbageBetweenFramesIsSkippedAndCountedOnce) {
  std::string bytes = EncodeOne(MakeRecord(1));
  // 64 bytes of garbage with no magic inside: one corrupt region, one
  // bad-frame count, however many bytes it spans.
  bytes.append(64, '\xff');
  bytes += EncodeOne(MakeRecord(2));
  bytes += EncodeOne(MakeRecord(3));
  WriteFile(path_, bytes);

  StreamIngester ingester({path_});
  std::vector<FeedbackRecord> records;
  ASSERT_TRUE(ingester.Poll(&records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].user, MakeRecord(1).user);
  EXPECT_EQ(records[1].user, MakeRecord(2).user);
  EXPECT_EQ(records[2].user, MakeRecord(3).user);
  EXPECT_EQ(ingester.bad_frames(), 1);
  EXPECT_EQ(ingester.records(), 3);
}

TEST_F(IngesterCorruptionTest, TruncatedTailStaysPendingThenCompletes) {
  const std::string full = EncodeOne(MakeRecord(9));
  WriteFile(path_, EncodeOne(MakeRecord(8)) + full.substr(0, 20));

  StreamIngester ingester({path_});
  std::vector<FeedbackRecord> records;
  ASSERT_TRUE(ingester.Poll(&records).ok());
  // The half-written frame is a producer mid-append: pending, not bad.
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(ingester.bad_frames(), 0);
  // Consumed offset excludes the pending tail, so a restarted ingester
  // re-reads from the frame boundary.
  EXPECT_EQ(ingester.offset(),
            static_cast<int64_t>(kFeedbackFrameSize));

  AppendFile(path_, full.substr(20));
  ASSERT_TRUE(ingester.Poll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].user, MakeRecord(9).user);
  EXPECT_EQ(ingester.bad_frames(), 0);
}

TEST_F(IngesterCorruptionTest, EverySingleBitFlipRecoversCleanly) {
  // Flip every bit of the middle frame in a 3-frame log. Whatever the
  // flip does — magic break, header break, CRC mismatch, length lie —
  // the ingester must never crash, never fabricate a record, and must
  // recover both intact neighbors unless the flip's inflated length
  // swallowed the rest of the file as "pending".
  const std::string f1 = EncodeOne(MakeRecord(11));
  const std::string f2 = EncodeOne(MakeRecord(22));
  const std::string f3 = EncodeOne(MakeRecord(33));
  for (size_t byte = 0; byte < f2.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = f2;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      WriteFile(path_, f1 + corrupt + f3);

      StreamIngester ingester({path_});
      std::vector<FeedbackRecord> records;
      ASSERT_TRUE(ingester.Poll(&records).ok())
          << "bit " << bit << " of byte " << byte;
      // Frame 1 always survives; the corrupted frame never decodes.
      ASSERT_GE(records.size(), 1u);
      ASSERT_LE(records.size(), 2u);
      EXPECT_EQ(records[0].user, MakeRecord(11).user);
      for (const FeedbackRecord& record : records) {
        EXPECT_NE(record.user, MakeRecord(22).user);
      }
      const bool length_flip = byte >= 8 && byte < 12;
      if (!length_flip) {
        // Outside the length field the damage is provable on the spot:
        // exactly one bad region, and frame 3 is recovered behind it.
        ASSERT_EQ(records.size(), 2u)
            << "bit " << bit << " of byte " << byte;
        EXPECT_EQ(records[1].user, MakeRecord(33).user);
        EXPECT_EQ(ingester.bad_frames(), 1)
            << "bit " << bit << " of byte " << byte;
      }
    }
  }
}

TEST_F(IngesterCorruptionTest, SeededGarbageFuzzNeverCrashes) {
  // Interleave seeded random garbage with valid frames: all valid
  // frames whose bytes the garbage cannot mimic must be recovered, and
  // every poll must return cleanly.
  Rng rng(0xfeedface);
  for (int trial = 0; trial < 50; ++trial) {
    std::string bytes;
    int valid = 0;
    for (int piece = 0; piece < 8; ++piece) {
      if (rng.UniformInt(2) == 0) {
        bytes += EncodeOne(MakeRecord(trial * 100 + piece));
        ++valid;
      } else {
        const size_t len = 1 + rng.UniformInt(100);
        for (size_t i = 0; i < len; ++i) {
          bytes.push_back(static_cast<char>(rng.UniformInt(256)));
        }
      }
    }
    WriteFile(path_, bytes);
    StreamIngester ingester({path_});
    std::vector<FeedbackRecord> records;
    ASSERT_TRUE(ingester.Poll(&records).ok()) << "trial " << trial;
    // Random garbage can eat a following frame (a fake header whose
    // length claim spans it) but can never mint a record that was not
    // appended: every decoded record is one of ours, in order.
    EXPECT_LE(records.size(), static_cast<size_t>(valid));
    for (const FeedbackRecord& record : records) {
      EXPECT_EQ(record.user / 100, trial);
    }
  }
}

TEST(FeedbackLogTest, AppendsFramesAByteExactReaderDecodes) {
  const std::string path = ::testing::TempDir() + "/feedback_rw.log";
  std::remove(path.c_str());
  {
    StatusOr<std::unique_ptr<FeedbackLog>> log = FeedbackLog::Open({path});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(MakeRecord(1)).ok());
    ASSERT_TRUE(
        log.value()->AppendBatch({MakeRecord(2), MakeRecord(3)}).ok());
    EXPECT_EQ(log.value()->records_written(), 3);
    EXPECT_EQ(log.value()->bytes_written(),
              static_cast<int64_t>(3 * kFeedbackFrameSize));
    EXPECT_EQ(log.value()->dropped(), 0);
  }
  // The on-disk bytes are exactly the three encodings, in order.
  EXPECT_EQ(ReadFileBytes(path), EncodeOne(MakeRecord(1)) +
                                     EncodeOne(MakeRecord(2)) +
                                     EncodeOne(MakeRecord(3)));

  // A reopened producer extends the same stream.
  {
    StatusOr<std::unique_ptr<FeedbackLog>> log = FeedbackLog::Open({path});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(MakeRecord(4)).ok());
  }
  StreamIngester ingester({path});
  std::vector<FeedbackRecord> records;
  ASSERT_TRUE(ingester.Poll(&records).ok());
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].user, MakeRecord(i + 1).user);
  }
  std::remove(path.c_str());
}

TEST(FeedbackLogTest, SizeBoundDropsWholeBatchesAndCounts) {
  const std::string path = ::testing::TempDir() + "/feedback_bound.log";
  std::remove(path.c_str());
  FeedbackLog::Config config;
  config.path = path;
  config.max_bytes = static_cast<int64_t>(2 * kFeedbackFrameSize);
  StatusOr<std::unique_ptr<FeedbackLog>> log = FeedbackLog::Open(config);
  ASSERT_TRUE(log.ok());
  const int64_t dropped_before =
      telemetry::GetCounter("uae.learn.feedback.dropped")->Get();

  ASSERT_TRUE(log.value()->Append(MakeRecord(1)).ok());
  // A 2-record batch would cross the bound: dropped whole, not split.
  ASSERT_TRUE(log.value()->AppendBatch({MakeRecord(2), MakeRecord(3)}).ok());
  EXPECT_EQ(log.value()->dropped(), 2);
  // A single record still fits — the bound drops batches, not the log.
  ASSERT_TRUE(log.value()->Append(MakeRecord(4)).ok());
  // Now the log is full: everything further is dropped, Append stays OK.
  ASSERT_TRUE(log.value()->Append(MakeRecord(5)).ok());
  EXPECT_EQ(log.value()->records_written(), 2);
  EXPECT_EQ(log.value()->dropped(), 3);
  EXPECT_EQ(telemetry::GetCounter("uae.learn.feedback.dropped")->Get() -
                dropped_before,
            3);

  StreamIngester ingester({path});
  std::vector<FeedbackRecord> records;
  ASSERT_TRUE(ingester.Poll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].user, MakeRecord(1).user);
  EXPECT_EQ(records[1].user, MakeRecord(4).user);
  std::remove(path.c_str());
}

TEST(FeedbackLogTest, OpenRejectsBadConfig) {
  EXPECT_FALSE(FeedbackLog::Open({""}).ok());
  FeedbackLog::Config config;
  config.path = ::testing::TempDir() + "/feedback_cfg.log";
  config.max_bytes = 0;
  EXPECT_FALSE(FeedbackLog::Open(config).ok());
}

}  // namespace
}  // namespace uae::learn
