// End-to-end integration test of the headline pipeline shapes that are
// robust to seed noise:
//   1. PN (active-feedback-only training) collapses far below the base
//      model under the paper's observed-label protocol.
//   2. UAE weighting stays in the base model's league (never collapses).
//   3. UAE's attention recovers ground truth far better than PN's.
// The finer-grained comparisons (UAE > base on both metrics) live in the
// bench binaries where they are averaged over seeds.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/generator.h"
#include "eval/attention_metrics.h"

namespace uae::core {
namespace {

class PipelineIntegration : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
    cfg.num_sessions = 1200;
    dataset_ = new data::Dataset(data::GenerateDataset(cfg, 42));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static models::TrainConfig Train() {
    models::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.seed = 100;
    return cfg;
  }

  static data::Dataset* dataset_;
};

data::Dataset* PipelineIntegration::dataset_ = nullptr;

TEST_F(PipelineIntegration, PnCollapsesAndUaeDoesNot) {
  const models::ModelConfig model_config;

  const RunResult base = TrainModel(*dataset_, models::ModelKind::kDcnV2,
                                    nullptr, model_config, Train());

  const AttentionArtifacts pn =
      FitAttention(*dataset_, attention::AttentionMethod::kPn, 0.5f, 100);
  const RunResult pn_run = TrainModel(*dataset_, models::ModelKind::kDcnV2,
                                      &pn.weights, model_config, Train());

  const AttentionArtifacts uae =
      FitAttention(*dataset_, attention::AttentionMethod::kUae, 0.5f, 100);
  const RunResult uae_run = TrainModel(*dataset_, models::ModelKind::kDcnV2,
                                       &uae.weights, model_config, Train());

  // 1. PN discards ~85% of the data -> large observed-AUC collapse.
  EXPECT_LT(pn_run.test.auc, base.test.auc - 0.02)
      << "PN should collapse below base";
  // 2. UAE stays in the base model's league.
  EXPECT_GT(uae_run.test.auc, base.test.auc - 0.01);
  EXPECT_GT(uae_run.test.auc, pn_run.test.auc + 0.02);

  // 3. Attention recovery: UAE's alpha-hat is far closer to truth.
  EXPECT_LT(uae.alpha_mae, pn.alpha_mae - 0.1);
  const eval::AttentionQuality uae_quality =
      eval::EvaluateAttentionRecovery(*dataset_, uae.alpha);
  EXPECT_GT(uae_quality.correlation, 0.3);
}

}  // namespace
}  // namespace uae::core
