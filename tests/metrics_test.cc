#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "eval/metrics.h"

namespace uae::eval {
namespace {

TEST(AucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, InvertedRanking) {
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, HandComputedValue) {
  // Positives {0.4, 0.8}, negatives {0.3, 0.5}: pairs won = (0.4>0.3) +
  // (0.8>0.3) + (0.8>0.5) = 3 of 4.
  EXPECT_DOUBLE_EQ(Auc({0.4, 0.3, 0.8, 0.5}, {1, 0, 1, 0}), 0.75);
}

TEST(AucTest, TiesCountHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.5, 0.5}, {1, 0}), 0.5);
  // One clear win + one tie of 2 pairs: (1 + 0.5) / 2.
  EXPECT_DOUBLE_EQ(Auc({0.7, 0.5, 0.5}, {1, 1, 0}), 0.75);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  // Property: AUC depends only on the score ordering.
  Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(rng.Uniform(-3.0, 3.0));
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  const double base = Auc(scores, labels);
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(std::tanh(s) * 10.0 + 5.0);
  EXPECT_NEAR(Auc(transformed, labels), base, 1e-12);
}

TEST(AucTest, MatchesNaivePairCountOnRandomData) {
  Rng rng(4);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.UniformInt(20));  // Force ties.
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 1) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] != 0) continue;
      ++pairs;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  ASSERT_GT(pairs, 0);
  EXPECT_NEAR(Auc(scores, labels), wins / pairs, 1e-12);
}

TEST(GroupAucTest, WeightsByPositiveCount) {
  // Group 1: AUC 1.0 with 1 positive; group 2: AUC 0.0 with 3 positives.
  std::vector<GroupedExample> examples = {
      {1, 0.9, 1}, {1, 0.1, 0},
      {2, 0.1, 1}, {2, 0.2, 1}, {2, 0.3, 1}, {2, 0.9, 0},
  };
  EXPECT_NEAR(GroupAuc(examples), (1.0 * 1.0 + 3.0 * 0.0) / 4.0, 1e-12);
}

TEST(GroupAucTest, SkipsSingleClassGroups) {
  std::vector<GroupedExample> examples = {
      {1, 0.9, 1}, {1, 0.1, 1},              // All-positive: skipped.
      {2, 0.8, 1}, {2, 0.2, 0},              // AUC 1.
  };
  EXPECT_DOUBLE_EQ(GroupAuc(examples), 1.0);
}

TEST(GroupAucTest, AllGroupsDegenerate) {
  std::vector<GroupedExample> examples = {{1, 0.9, 1}, {2, 0.1, 0}};
  EXPECT_DOUBLE_EQ(GroupAuc(examples), 0.5);
}

TEST(LogLossTest, KnownValues) {
  EXPECT_NEAR(LogLoss({0.5, 0.5}, {1, 0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogLoss({0.9}, {1}), -std::log(0.9), 1e-12);
  // Clamps extreme predictions instead of producing inf.
  EXPECT_LT(LogLoss({1.0}, {0}), 20.0);
}

TEST(MaeTest, Basics) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 2.0}, {1.5, 1.0}), 0.75);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({3.0}, {3.0}), 0.0);
}

}  // namespace
}  // namespace uae::eval
