#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace uae::telemetry {
namespace {

// ---------------------------------------------------------------------
// Minimal JSONL readback helpers: enough structure checking to prove the
// sink writes one well-formed flat JSON object per line, plus field
// extraction for round-trip assertions.

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

/// True when the line looks like one flat JSON object: brace-delimited,
/// quotes balanced outside escapes, no stray control characters.
bool LooksLikeJsonObject(const std::string& line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return false;
  }
  bool in_string = false;
  int depth = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return !in_string && depth == 0;
}

/// Extracts the raw value token for `key` ("" when absent).
std::string Field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t start = at + needle.size();
  size_t end = start;
  if (line[start] == '"') {
    end = start + 1;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    return line.substr(start + 1, end - start - 1);
  }
  int depth = 0;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') {
      if (depth == 0) break;
      --depth;
    }
    if ((c == ',') && depth == 0) break;
    ++end;
  }
  return line.substr(start, end - start);
}

bool HasField(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "uae_telemetry_" + name;
}

class TelemetryTest : public testing::Test {
 protected:
  void SetUp() override {
    CloseSink();
    ResetRegistryForTest();
  }
  void TearDown() override { CloseSink(); }
};

// ---------------------------------------------------------------------
// Metric semantics

TEST_F(TelemetryTest, CounterAddsAndResets) {
  Counter* counter = GetCounter("uae.test.counter");
  EXPECT_EQ(counter->Get(), 0);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Get(), 42);
  counter->Reset();
  EXPECT_EQ(counter->Get(), 0);
  // Same name -> same metric.
  EXPECT_EQ(GetCounter("uae.test.counter"), counter);
  EXPECT_NE(GetCounter("uae.test.other"), counter);
}

TEST_F(TelemetryTest, GaugeIsLastWriteWins) {
  Gauge* gauge = GetGauge("uae.test.gauge");
  gauge->Set(1.5);
  gauge->Set(-3.25);
  EXPECT_DOUBLE_EQ(gauge->Get(), -3.25);
  EXPECT_EQ(GetGauge("uae.test.gauge"), gauge);
}

TEST_F(TelemetryTest, HistogramBucketsAndSidecars) {
  Histogram* histogram =
      GetHistogram("uae.test.hist", std::vector<double>{1.0, 10.0});
  histogram->Record(0.5);   // Bucket 0 (<= 1).
  histogram->Record(1.0);   // Bucket 0 (inclusive upper bound).
  histogram->Record(5.0);   // Bucket 1.
  histogram->Record(99.0);  // Overflow bucket.
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 4);
  EXPECT_DOUBLE_EQ(snapshot.sum, 105.5);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 99.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 105.5 / 4);
  ASSERT_EQ(snapshot.buckets.size(), 3u);
  EXPECT_EQ(snapshot.buckets[0], 2);
  EXPECT_EQ(snapshot.buckets[1], 1);
  EXPECT_EQ(snapshot.buckets[2], 1);

  histogram->Reset();
  EXPECT_EQ(histogram->Snapshot().count, 0);
}

TEST_F(TelemetryTest, QuantileInterpolatesInsideBuckets) {
  Histogram* histogram =
      GetHistogram("uae.test.quantile", std::vector<double>{10.0});
  for (int v = 1; v <= 100; ++v) histogram->Record(v);
  const HistogramSnapshot snapshot = histogram->Snapshot();
  // 10 samples land in (-inf,10], 90 in the overflow bucket whose edges
  // clamp to [10, max=100] — uniform data, so the estimates are exact.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.99), 99.0);
  // Inside the first bucket the lower edge is the observed min.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.05), 1.0 + 0.5 * 9.0);
  // The ends clamp to the observed range.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 100.0);
}

TEST_F(TelemetryTest, QuantileDegenerateCases) {
  Histogram* empty = GetHistogram("uae.test.quantile_empty");
  EXPECT_DOUBLE_EQ(empty->Snapshot().Quantile(0.5), 0.0);

  Histogram* single =
      GetHistogram("uae.test.quantile_single", std::vector<double>{1.0});
  single->Record(0.25);
  const HistogramSnapshot snapshot = single->Snapshot();
  // One sample: every quantile is that sample (bucket edges collapse).
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.99), 0.25);
}

TEST_F(TelemetryTest, SnapshotRecordsCarryQuantiles) {
  const std::string path = TempPath("quantile_sink.jsonl");
  ASSERT_TRUE(ConfigureSink(path));
  GetHistogram("uae.test.q_hist")->Record(0.5);
  EmitMetricsSnapshot("unit");
  CloseSink();
  bool found = false;
  for (const std::string& line : ReadLines(path)) {
    if (line.find("uae.test.q_hist") == std::string::npos) continue;
    found = true;
    for (const char* key : {"p50", "p95", "p99"}) {
      EXPECT_TRUE(HasField(line, key)) << line;
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, ConfigureSinkCreatesMissingParentDirs) {
  const std::string dir = TempPath("nested_sink_dir");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/a/b/sink.jsonl";
  ASSERT_TRUE(ConfigureSink(path));  // Parents made on demand, no drop.
  Emit("unit.event", JsonObject().Set("ok", true));
  CloseSink();
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open());
  std::string line;
  EXPECT_TRUE(static_cast<bool>(std::getline(file, line)));
  EXPECT_TRUE(HasField(line, "ok"));
  std::filesystem::remove_all(dir);
}

TEST_F(TelemetryTest, RegistryResetKeepsPointersValid) {
  Counter* counter = GetCounter("uae.test.survivor");
  counter->Add(7);
  ResetRegistryForTest();
  EXPECT_EQ(counter->Get(), 0);  // Value cleared...
  counter->Add(1);               // ...but the pointer still works,
  EXPECT_EQ(GetCounter("uae.test.survivor"), counter);  // and is stable.
}

// ---------------------------------------------------------------------
// ScopedTimer

TEST_F(TelemetryTest, ScopedTimerAccumulatesIntoHistogram) {
  Histogram* histogram = GetHistogram("uae.test.timer_s");
  {
    ScopedTimer timer(histogram);
  }
  {
    ScopedTimer timer(histogram);
    const double first = timer.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(timer.Stop(), first);  // Idempotent, no double count.
  }
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 2);
  EXPECT_GE(snapshot.sum, 0.0);
}

// ---------------------------------------------------------------------
// Multi-threaded increments

TEST_F(TelemetryTest, ConcurrentCounterIncrementsAreLossless) {
  Counter* counter = GetCounter("uae.test.mt_counter");
  Histogram* histogram = GetHistogram("uae.test.mt_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        if (i % 1000 == 0) histogram->Record(1e-4);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Get(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram->Snapshot().count, kThreads * (kPerThread / 1000));
}

// ---------------------------------------------------------------------
// JSON rendering

TEST_F(TelemetryTest, JsonObjectRendersAndEscapes) {
  const std::string json = JsonObject()
                               .Set("s", "a\"b\\c\nd")
                               .Set("i", int64_t{-7})
                               .Set("d", 0.25)
                               .Set("b", true)
                               .SetRaw("arr", "[1,2]")
                               .Str();
  EXPECT_EQ(json,
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-7,\"d\":0.25,\"b\":true,"
            "\"arr\":[1,2]}");
  EXPECT_TRUE(LooksLikeJsonObject(json));
}

TEST_F(TelemetryTest, JsonNumberRoundTrips) {
  for (const double v : {0.0, 1.0, -1.5, 0.1, 1e-9, 12345.6789, 1e300}) {
    EXPECT_DOUBLE_EQ(std::stod(JsonNumber(v)), v) << JsonNumber(v);
  }
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

// ---------------------------------------------------------------------
// Sink round-trip

TEST_F(TelemetryTest, SinkWritesParseableRecords) {
  const std::string path = TempPath("sink.jsonl");
  ASSERT_TRUE(ConfigureSink(path));
  EXPECT_TRUE(SinkEnabled());
  EXPECT_EQ(SinkPath(), path);

  Emit("unit.event", JsonObject().Set("name", "alpha").Set("value", 3));
  Emit("unit.event", JsonObject().Set("name", "beta").Set("value", 0.5));
  GetCounter("uae.test.emitted")->Add(9);
  GetHistogram("uae.test.span_s")->Record(0.125);
  EmitMetricsSnapshot("unit");
  CloseSink();
  EXPECT_FALSE(SinkEnabled());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 4u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(LooksLikeJsonObject(line)) << line;
    EXPECT_TRUE(HasField(line, "type")) << line;
    EXPECT_TRUE(HasField(line, "ts")) << line;
  }
  // Round-trip the event fields.
  EXPECT_EQ(Field(lines[0], "type"), "unit.event");
  EXPECT_EQ(Field(lines[0], "name"), "alpha");
  EXPECT_EQ(Field(lines[0], "value"), "3");
  EXPECT_EQ(Field(lines[1], "name"), "beta");
  EXPECT_EQ(Field(lines[1], "value"), "0.5");
  // The snapshot carries the counter and the histogram.
  bool saw_counter = false;
  bool saw_histogram = false;
  for (const std::string& line : lines) {
    if (Field(line, "type") != "metric") continue;
    EXPECT_EQ(Field(line, "label"), "unit");
    if (Field(line, "name") == "uae.test.emitted") {
      saw_counter = true;
      EXPECT_EQ(Field(line, "kind"), "counter");
      EXPECT_EQ(Field(line, "value"), "9");
    }
    if (Field(line, "name") == "uae.test.span_s") {
      saw_histogram = true;
      EXPECT_EQ(Field(line, "kind"), "histogram");
      EXPECT_EQ(Field(line, "count"), "1");
      EXPECT_EQ(Field(line, "sum"), "0.125");
      EXPECT_TRUE(HasField(line, "bounds"));
      EXPECT_TRUE(HasField(line, "buckets"));
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histogram);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, EmitIsANoOpWithoutASink) {
  // Must not crash or create files.
  Emit("orphan", JsonObject().Set("x", 1));
  EXPECT_FALSE(SinkEnabled());
  EXPECT_EQ(ManifestPath(), "");
  EXPECT_FALSE(WriteRunManifest(JsonObject().Set("x", 1)));
}

TEST_F(TelemetryTest, ConcurrentEmittersDoNotShearLines) {
  const std::string path = TempPath("mt_sink.jsonl");
  ASSERT_TRUE(ConfigureSink(path));
  constexpr int kThreads = 6;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Emit("mt", JsonObject().Set("thread", t).Set("i", i).Set(
                       "payload", std::string(64, 'x')));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  CloseSink();
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines) {
    ASSERT_TRUE(LooksLikeJsonObject(line)) << line;
  }
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, RunManifestWritesNextToTheSink) {
  const std::string path = TempPath("manifest.jsonl");
  ASSERT_TRUE(ConfigureSink(path));
  EXPECT_EQ(ManifestPath(), path + ".manifest.json");
  ASSERT_TRUE(WriteRunManifest(
      JsonObject().Set("model", "dcn_v2").Set("seed", 7)));
  const std::vector<std::string> lines = ReadLines(path + ".manifest.json");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(LooksLikeJsonObject(lines[0]));
  EXPECT_EQ(Field(lines[0], "model"), "dcn_v2");
  EXPECT_EQ(Field(lines[0], "seed"), "7");
  EXPECT_TRUE(HasField(lines[0], "build"));
  EXPECT_TRUE(HasField(lines[0], "ts"));
  CloseSink();
  std::remove(path.c_str());
  std::remove((path + ".manifest.json").c_str());
}

// ---------------------------------------------------------------------
// Trainer smoke: per-epoch records flow end to end.

TEST_F(TelemetryTest, TrainerEmitsPerEpochRecords) {
  const std::string path = TempPath("trainer.jsonl");
  ASSERT_TRUE(ConfigureSink(path));

  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 120;
  cfg.num_users = 30;
  cfg.num_songs = 60;
  cfg.num_artists = 12;
  cfg.num_albums = 20;
  const data::Dataset dataset = data::GenerateDataset(cfg, 11);

  Rng rng(1);
  models::ModelConfig model_config;
  model_config.embed_dim = 4;
  model_config.mlp_dims = {8};
  auto model = models::CreateRecommender(models::ModelKind::kFm, &rng,
                                         dataset.schema, model_config);
  models::TrainConfig train;
  train.epochs = 2;
  train.batch_size = 64;
  const models::TrainResult curves =
      models::TrainRecommender(model.get(), dataset, nullptr, train);
  CloseSink();
  ASSERT_EQ(curves.train_loss_per_epoch.size(), 2u);

  int epoch_records = 0;
  int run_records = 0;
  for (const std::string& line : ReadLines(path)) {
    ASSERT_TRUE(LooksLikeJsonObject(line)) << line;
    if (Field(line, "type") == "trainer.epoch") {
      ++epoch_records;
      for (const char* key :
           {"model", "epoch", "epochs", "loss", "train_auc", "valid_auc",
            "events", "events_per_sec", "epoch_seconds", "grad_norm_mean",
            "clip_activations", "bad_steps", "recovered_steps", "lr"}) {
        EXPECT_TRUE(HasField(line, key)) << key << " missing in " << line;
      }
      EXPECT_EQ(Field(line, "model"), "FM");
      EXPECT_GT(std::stod(Field(line, "events")), 0.0);
      EXPECT_GT(std::stod(Field(line, "events_per_sec")), 0.0);
      // The emitted loss must match the returned curve.
      const int epoch = std::stoi(Field(line, "epoch"));
      EXPECT_NEAR(std::stod(Field(line, "loss")),
                  curves.train_loss_per_epoch[epoch - 1], 1e-12);
    } else if (Field(line, "type") == "trainer.run") {
      ++run_records;
      EXPECT_EQ(Field(line, "diverged"), "false");
    }
  }
  EXPECT_EQ(epoch_records, 2);
  EXPECT_EQ(run_records, 1);
  // The instrumented counters saw the steps.
  EXPECT_GT(GetCounter("uae.trainer.steps")->Get(), 0);
  EXPECT_GT(GetCounter("uae.data.batcher.batches")->Get(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uae::telemetry
