#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace uae {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOnErrorDiesWithStatusDeathTest) {
  // value() on an error is a programming bug; it must abort loudly with
  // the carried status, never return an indeterminate T.
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_DEATH((void)v.value(), "NotFound: nope");
  const StatusOr<int>& cref = v;
  EXPECT_DEATH((void)cref.value(), "NotFound: nope");
  EXPECT_DEATH((void)std::move(v).value(), "NotFound: nope");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(5);
  int counts[7] = {0};
  for (int i = 0; i < 70000; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(17);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = rng.Zipf(100, 1.0);
    ASSERT_LT(r, 100u);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, 5 * high);
}

TEST(RngTest, PoissonMean) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Poisson(3.0);
  EXPECT_NEAR(sum / 20000, 3.0, 0.1);
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, SummarizeBasics) {
  const SampleSummary s = Summarize({2.0, 4.0, 6.0, 8.0});
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(20.0 / 3.0), 1e-12);
  EXPECT_GT(s.ci95_half, 0.0);
}

TEST(StatsTest, SummarizeSingleton) {
  const SampleSummary s = Summarize({3.5});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(StatsTest, StudentTCdfSymmetry) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-9);
  EXPECT_NEAR(StudentTCdf(2.0, 10.0) + StudentTCdf(-2.0, 10.0), 1.0, 1e-9);
}

TEST(StatsTest, StudentTCdfKnownValue) {
  // t = 2.228 is the two-sided 95% critical value at df=10.
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
}

TEST(StatsTest, WelchDetectsClearDifference) {
  const TTestResult r =
      WelchTTest({10.0, 10.1, 9.9, 10.05}, {8.0, 8.1, 7.9, 8.05});
  EXPECT_LT(r.p_value, 0.001);
}

TEST(StatsTest, WelchAcceptsIdenticalDistributions) {
  const TTestResult r =
      WelchTTest({1.0, 2.0, 3.0, 4.0}, {2.5, 1.5, 3.5, 2.4});
  EXPECT_GT(r.p_value, 0.5);
}

TEST(StatsTest, TCritical95Table) {
  EXPECT_NEAR(TCritical95(4), 2.776, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.96, 1e-6);
}

TEST(StatsTest, RelaImprMatchesPaperDefinition) {
  // RelaImpr((0.74 - 0.5)/(0.73 - 0.5) - 1) * 100.
  EXPECT_NEAR(RelaImpr(0.74, 0.73), (0.24 / 0.23 - 1.0) * 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(RelaImpr(0.6, 0.6), 0.0);
  EXPECT_LT(RelaImpr(0.55, 0.6), 0.0);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns) {
  AsciiTable table({"model", "auc"});
  table.AddRow({"FM", "74.90"});
  table.AddSeparator();
  table.AddRow({"DCN-V2", "73.95"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| model  | auc   |"), std::string::npos);
  EXPECT_NE(out.find("| FM     | 74.90 |"), std::string::npos);
  EXPECT_NE(out.find("| DCN-V2 | 73.95 |"), std::string::npos);
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(AsciiTable::Fmt(74.172, 2), "74.17");
  EXPECT_EQ(AsciiTable::FmtStar(74.172, 2, true), "74.17*");
  EXPECT_EQ(AsciiTable::FmtStar(74.172, 2, false), "74.17");
}

// ------------------------------------------------------------------- Csv

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv({"name", "value"});
  csv.AddRow({"a,b", "say \"hi\""});
  const std::string out = csv.ToString();
  EXPECT_EQ(out, "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, NumericRows) {
  CsvWriter csv({"x", "y"});
  csv.AddNumericRow({1.5, 2.25});
  EXPECT_EQ(csv.ToString(), "x,y\n1.5,2.25\n");
}

TEST(CsvTest, WritesFile) {
  CsvWriter csv({"x"});
  csv.AddNumericRow({1.0});
  const std::string path = testing::TempDir() + "/uae_csv_test.csv";
  EXPECT_TRUE(csv.WriteFile(path).ok());
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/f.csv").ok());
}

}  // namespace
}  // namespace uae
