#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <tuple>

#include "common/parallel.h"
#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace uae::nn {
namespace {

constexpr double kTolerance = 2e-2;  // Relative; float32 + eps=1e-3.

NodePtr Leaf(Rng* rng, int rows, int cols, float scale = 1.0f) {
  return MakeLeaf(UniformInit(rng, rows, cols, scale), /*requires_grad=*/true);
}

/// One named op-scenario for the parameterized gradient sweep: builds the
/// leaves once, then a scalar loss from them on demand.
struct GradCase {
  std::string name;
  std::function<NodePtr(const std::vector<NodePtr>&)> loss;
  std::vector<std::pair<int, int>> leaf_shapes;
};

/// Restores the previous thread count so the sweep cannot leak its
/// setting into other tests in the binary.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : prev_(parallel::NumThreads()) {
    parallel::SetNumThreads(n);
  }
  ~ScopedThreads() { parallel::SetNumThreads(prev_); }

 private:
  int prev_;
};

/// The full op sweep runs at 1 and 4 threads: the analytic side of the
/// check exercises the parallel kernel paths, and the determinism
/// contract says the numbers must be the same either way.
class GradCheckSweep
    : public testing::TestWithParam<std::tuple<GradCase, int>> {};

TEST_P(GradCheckSweep, NumericMatchesAnalytic) {
  const GradCase& scenario = std::get<0>(GetParam());
  ScopedThreads scope(std::get<1>(GetParam()));
  Rng rng(42);
  std::vector<NodePtr> leaves;
  for (const auto& [rows, cols] : scenario.leaf_shapes) {
    leaves.push_back(Leaf(&rng, rows, cols));
  }
  const GradCheckResult result = CheckGradients(
      [&]() { return scenario.loss(leaves); }, leaves);
  EXPECT_GT(result.checked_elements, 0);
  EXPECT_LT(result.max_rel_error, kTolerance)
      << scenario.name << ": max abs err " << result.max_abs_error;
}

/// Weighted mean-square-ish scalarizer keeping gradients non-uniform.
NodePtr Scalarize(const NodePtr& x) {
  return SumAll(Mul(x, AddScalar(ScalarMul(x, 0.1f), 0.5f)));
}

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  cases.push_back({"matmul",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(MatMul(l[0], l[1]));
                   },
                   {{3, 4}, {4, 2}}});
  cases.push_back({"add",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(Add(l[0], l[1]));
                   },
                   {{2, 3}, {2, 3}}});
  cases.push_back({"sub_mul",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(Mul(Sub(l[0], l[1]), l[1]));
                   },
                   {{2, 3}, {2, 3}}});
  cases.push_back({"add_row_vector",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(AddRowVector(l[0], l[1]));
                   },
                   {{3, 4}, {1, 4}}});
  cases.push_back({"mul_col_vector",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(MulColVector(l[0], l[1]));
                   },
                   {{3, 4}, {3, 1}}});
  cases.push_back({"sigmoid",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(Sigmoid(l[0]));
                   },
                   {{2, 3}}});
  cases.push_back({"tanh",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(Tanh(l[0]));
                   },
                   {{2, 3}}});
  cases.push_back({"softplus",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(Softplus(l[0]));
                   },
                   {{2, 3}}});
  cases.push_back({"exp",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(Exp(l[0]));
                   },
                   {{2, 3}}});
  cases.push_back({"scalar_chain",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(OneMinus(AddScalar(
                         ScalarMul(Neg(l[0]), 0.7f), 0.2f)));
                   },
                   {{2, 3}}});
  cases.push_back({"row_sum",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(RowSum(l[0]));
                   },
                   {{3, 4}}});
  cases.push_back({"mean_all",
                   [](const std::vector<NodePtr>& l) {
                     return MeanAll(Mul(l[0], l[0]));
                   },
                   {{3, 4}}});
  cases.push_back({"concat_slice",
                   [](const std::vector<NodePtr>& l) {
                     NodePtr cat = ConcatCols({l[0], l[1]});
                     return Scalarize(SliceCols(cat, 1, 3));
                   },
                   {{2, 2}, {2, 2}}});
  cases.push_back({"softmax_rows",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(SoftmaxRows(l[0]));
                   },
                   {{3, 4}}});
  cases.push_back({"embedding_lookup",
                   [](const std::vector<NodePtr>& l) {
                     return Scalarize(
                         EmbeddingLookup(l[0], {0, 2, 1, 2}));
                   },
                   {{3, 2}}});
  cases.push_back({"weighted_softplus_sum",
                   [](const std::vector<NodePtr>& l) {
                     Tensor w(4, 1, {2.0f, -1.0f, 0.5f, 1.5f});
                     return Add(
                         WeightedSoftplusSum(l[0], w, 1.0f),
                         WeightedSoftplusSum(l[0], Tensor::Ones(4, 1),
                                             -1.0f));
                   },
                   {{4, 1}}});
  cases.push_back({"fm_interaction",
                   [](const std::vector<NodePtr>& l) {
                     NodePtr sum = Add(l[0], l[1]);
                     NodePtr sq = Add(Mul(l[0], l[0]), Mul(l[1], l[1]));
                     return SumAll(
                         ScalarMul(RowSum(Sub(Mul(sum, sum), sq)), 0.5f));
                   },
                   {{3, 4}, {3, 4}}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckSweep,
    testing::Combine(testing::ValuesIn(MakeCases()), testing::Values(1, 4)),
    [](const testing::TestParamInfo<std::tuple<GradCase, int>>& info) {
      return std::get<0>(info.param).name + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GradCheckComposite, MlpLogLoss) {
  for (int threads : {1, 4}) {
    ScopedThreads scope(threads);
    Rng rng(7);
    Mlp mlp(&rng, 3, {5, 1}, Activation::kTanh);
    NodePtr x = Constant(UniformInit(&rng, 4, 3, 1.0f));
    Tensor pos = Tensor::Ones(4, 1);
    const auto loss = [&]() {
      return WeightedSoftplusSum(mlp.Forward(x), pos, -1.0f);
    };
    const GradCheckResult result = CheckGradients(loss, mlp.Parameters());
    EXPECT_LT(result.max_rel_error, kTolerance) << "threads=" << threads;
  }
}

TEST(GradCheckComposite, GruStepThroughTime) {
  for (int threads : {1, 4}) {
    ScopedThreads scope(threads);
    Rng rng(9);
    GruCell gru(&rng, 2, 3);
    NodePtr x0 = Constant(UniformInit(&rng, 2, 2, 1.0f));
    NodePtr x1 = Constant(UniformInit(&rng, 2, 2, 1.0f));
    const auto loss = [&]() {
      NodePtr h = gru.Step(x1, gru.Step(x0, gru.InitialState(2)));
      return SumAll(Mul(h, h));
    };
    // GRU gradients after two gated steps are tiny; raise the floor below
    // which only absolute error counts (float32 finite-difference noise).
    const GradCheckResult result =
        CheckGradients(loss, gru.Parameters(), /*epsilon=*/1e-3,
                       /*relative_floor=*/5e-3);
    EXPECT_GT(result.checked_elements, 40);
    EXPECT_LT(result.max_rel_error, kTolerance) << "threads=" << threads;
    EXPECT_LT(result.max_abs_error, 5e-3) << "threads=" << threads;
  }
}

TEST(GradCheckComposite, LinearIntoSoftmaxAttention) {
  for (int threads : {1, 4}) {
    ScopedThreads scope(threads);
    Rng rng(11);
    Linear wq(&rng, 3, 3), wk(&rng, 3, 3), wv(&rng, 3, 3);
    NodePtr f0 = Constant(UniformInit(&rng, 2, 3, 1.0f));
    NodePtr f1 = Constant(UniformInit(&rng, 2, 3, 1.0f));
    const auto loss = [&]() {
      // Mini AutoInt block: field 0 attends over {0, 1}.
      NodePtr q = wq.Forward(f0);
      NodePtr s0 = RowSum(Mul(q, wk.Forward(f0)));
      NodePtr s1 = RowSum(Mul(q, wk.Forward(f1)));
      NodePtr att = SoftmaxRows(ConcatCols({s0, s1}));
      NodePtr out = Add(MulColVector(wv.Forward(f0), SliceCols(att, 0, 1)),
                        MulColVector(wv.Forward(f1), SliceCols(att, 1, 1)));
      return SumAll(Mul(out, out));
    };
    std::vector<NodePtr> params;
    for (const Linear* l : {&wq, &wk, &wv}) {
      for (const NodePtr& p : l->Parameters()) params.push_back(p);
    }
    const GradCheckResult result = CheckGradients(loss, params);
    EXPECT_LT(result.max_rel_error, kTolerance) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace uae::nn
