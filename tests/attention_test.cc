#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention_estimator.h"
#include "attention/edm.h"
#include "attention/pn_ndb.h"
#include "attention/reweight.h"
#include "attention/sar.h"
#include "attention/uae_model.h"
#include "data/generator.h"

namespace uae::attention {
namespace {

data::Dataset TinyDataset(uint64_t seed = 3) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 300;
  cfg.num_users = 80;
  cfg.num_songs = 200;
  cfg.num_artists = 30;
  cfg.num_albums = 60;
  return data::GenerateDataset(cfg, seed);
}

/// Pearson correlation of predicted attention with the true alpha.
double AlphaCorrelation(const data::Dataset& d,
                        const data::EventScores& pred) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  int64_t n = 0;
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      const double x = pred.at(static_cast<int>(s), t);
      const double y = d.sessions[s].events[t].true_alpha;
      sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
      ++n;
    }
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  return cov / std::sqrt(vx * vy + 1e-12);
}

// -------------------------------------------------------------- Reweight

TEST(ReweightTest, MatchesEq19) {
  // w = 1 - (alpha + 1)^(-gamma).
  EXPECT_NEAR(ReweightFunction(0.0f, 15.0f), 0.0f, 1e-6);
  EXPECT_NEAR(ReweightFunction(1.0f, 1.0f), 0.5f, 1e-6);
  EXPECT_NEAR(ReweightFunction(0.5f, 2.0f), 1.0f - std::pow(1.5f, -2.0f),
              1e-6);
}

TEST(ReweightTest, MonotoneInAlphaAndBounded) {
  for (float gamma : {0.5f, 1.0f, 5.0f, 15.0f}) {
    float prev = -1.0f;
    for (float alpha = 0.0f; alpha <= 1.001f; alpha += 0.05f) {
      const float w = ReweightFunction(alpha, gamma);
      EXPECT_GE(w, 0.0f);
      EXPECT_LT(w, 1.0f);
      EXPECT_GE(w, prev);
      prev = w;
    }
  }
}

TEST(ReweightTest, LargerGammaGivesLargerWeights) {
  EXPECT_LT(ReweightFunction(0.4f, 1.0f), ReweightFunction(0.4f, 5.0f));
  EXPECT_LT(ReweightFunction(0.4f, 5.0f), ReweightFunction(0.4f, 15.0f));
}

TEST(ReweightTest, BuildSampleWeightsKeepsActiveAtOne) {
  const data::Dataset d = TinyDataset();
  data::EventScores alpha(d, 0.3f);
  const data::EventScores weights = BuildSampleWeights(d, alpha, 2.0f);
  const float expected_passive = ReweightFunction(0.3f, 2.0f);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      if (d.sessions[s].events[t].active()) {
        EXPECT_EQ(weights.at(static_cast<int>(s), t), 1.0f);
      } else {
        EXPECT_NEAR(weights.at(static_cast<int>(s), t), expected_passive,
                    1e-6);
      }
    }
  }
}

// ------------------------------------------------------------------- EDM

TEST(EdmTest, DecaysAndResets) {
  const data::Dataset d = TinyDataset();
  Edm edm(0.4);
  edm.Fit(d);
  const data::EventScores scores = edm.PredictAttention(d);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    int since = 0;
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      if (d.sessions[s].events[t].active()) since = 0;
      EXPECT_NEAR(scores.at(static_cast<int>(s), t),
                  std::exp(-0.4 * since), 1e-5);
      ++since;
    }
  }
}

TEST(EdmTest, ActiveEventsGetFullAttention) {
  const data::Dataset d = TinyDataset();
  const data::EventScores scores = Edm(0.3).PredictAttention(d);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      if (d.sessions[s].events[t].active()) {
        EXPECT_FLOAT_EQ(scores.at(static_cast<int>(s), t), 1.0f);
      }
    }
  }
}

// -------------------------------------------------------------------- PN

TEST(PnTest, PredictsHardAssumption) {
  const data::Dataset d = TinyDataset();
  Pn pn;
  pn.Fit(d);
  const data::EventScores scores = pn.PredictAttention(d);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      EXPECT_FLOAT_EQ(scores.at(static_cast<int>(s), t),
                      d.sessions[s].events[t].active() ? 1.0f : 0.0f);
    }
  }
}

TEST(PnTest, WeightsDiscardPassiveData) {
  const data::Dataset d = TinyDataset();
  Pn pn;
  pn.Fit(d);
  const data::EventScores weights =
      BuildSampleWeights(d, pn.PredictAttention(d), 15.0f);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      if (!d.sessions[s].events[t].active()) {
        EXPECT_FLOAT_EQ(weights.at(static_cast<int>(s), t), 0.0f);
      }
    }
  }
}

// ------------------------------------------------------------------- NDB

TEST(NdbTest, LearnsAttentionCorrelatedWithTruth) {
  const data::Dataset d = TinyDataset();
  HeuristicConfig cfg;
  cfg.epochs = 3;
  cfg.seed = 5;
  Ndb ndb(cfg);
  ndb.Fit(d);
  const data::EventScores scores = ndb.PredictAttention(d);
  // NDB is biased but should still correlate positively with attention.
  EXPECT_GT(AlphaCorrelation(d, scores), 0.15);
}

// ------------------------------------------------------------------- UAE

TEST(UaeTest, RequiresFitBeforePredictDeathTest) {
  UaeConfig cfg;
  Uae uae(cfg);
  const data::Dataset d = TinyDataset();
  EXPECT_DEATH(uae.PredictAttention(d), "Fit");
}

TEST(UaeTest, LearnsAttentionAndPropensity) {
  const data::Dataset d = TinyDataset(11);
  UaeConfig cfg;
  cfg.epochs = 3;
  cfg.seed = 9;
  Uae uae(cfg);
  uae.Fit(d);
  const data::EventScores alpha = uae.PredictAttention(d);
  EXPECT_GT(AlphaCorrelation(d, alpha), 0.3);

  // Propensity should track the ground-truth propensity closely — the
  // feedback history is a strong, directly observable driver.
  const data::EventScores p_hat = uae.PredictPropensity(d);
  double mae = 0.0;
  int64_t n = 0;
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      mae += std::fabs(p_hat.at(static_cast<int>(s), t) -
                       d.sessions[s].events[t].true_propensity);
      ++n;
    }
  }
  EXPECT_LT(mae / n, 0.2);
}

TEST(UaeTest, RiskHistoriesAreRecorded) {
  const data::Dataset d = TinyDataset();
  UaeConfig cfg;
  cfg.epochs = 2;
  Uae uae(cfg);
  uae.Fit(d);
  EXPECT_EQ(uae.attention_risk_history().size(),
            static_cast<size_t>(cfg.epochs * cfg.attention_steps));
  EXPECT_EQ(uae.propensity_risk_history().size(),
            static_cast<size_t>(cfg.epochs * cfg.propensity_steps));
  for (double r : uae.attention_risk_history()) EXPECT_GE(r, 0.0);
}

TEST(UaeTest, SequentialPropensityBeatsLocalAblation) {
  // The sequential propensity tower should recover the true propensity
  // better than the local-features ablation (the paper's core claim).
  const data::Dataset d = TinyDataset(13);
  auto propensity_mae = [&](bool sequential) {
    UaeConfig cfg;
    cfg.epochs = 3;
    cfg.seed = 21;
    cfg.sequential_propensity = sequential;
    Uae uae(cfg);
    uae.Fit(d);
    const data::EventScores p_hat = uae.PredictPropensity(d);
    double mae = 0.0;
    int64_t n = 0;
    for (size_t s = 0; s < d.sessions.size(); ++s) {
      for (int t = 0; t < d.sessions[s].length(); ++t) {
        mae += std::fabs(p_hat.at(static_cast<int>(s), t) -
                         d.sessions[s].events[t].true_propensity);
        ++n;
      }
    }
    return mae / n;
  };
  EXPECT_LT(propensity_mae(true), propensity_mae(false));
}

// ------------------------------------------------------------------- SAR

TEST(SarTest, FitsAndPredictsInRange) {
  const data::Dataset d = TinyDataset();
  SarConfig cfg;
  cfg.epochs = 2;
  cfg.seed = 3;
  Sar sar(cfg);
  sar.Fit(d);
  const data::EventScores alpha = sar.PredictAttention(d);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      const float a = alpha.at(static_cast<int>(s), t);
      EXPECT_GT(a, 0.0f);
      EXPECT_LT(a, 1.0f);
    }
  }
}

// --------------------------------------------------------------- Factory

TEST(FactoryTest, CreatesEveryMethod) {
  for (AttentionMethod method :
       {AttentionMethod::kEdm, AttentionMethod::kNdb, AttentionMethod::kPn,
        AttentionMethod::kSar, AttentionMethod::kUae}) {
    const auto estimator = CreateAttentionEstimator(method, 1);
    ASSERT_NE(estimator, nullptr);
    EXPECT_STREQ(estimator->name(), AttentionMethodName(method));
  }
}

}  // namespace
}  // namespace uae::attention
