#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace uae::nn {
namespace {

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  NodePtr x = MakeLeaf(Tensor(1, 1, {5.0f}), /*requires_grad=*/true);
  Sgd sgd({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    NodePtr loss = SumAll(Mul(x, x));
    sgd.ZeroGrad();
    Backward(loss);
    sgd.Step();
  }
  EXPECT_NEAR(x->value.ScalarValue(), 0.0f, 1e-4);
}

TEST(OptimizerTest, AdamMinimizesShiftedQuadratic) {
  NodePtr x = MakeLeaf(Tensor(1, 2, {4.0f, -3.0f}), /*requires_grad=*/true);
  Adam adam({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    // loss = sum((x - [1, 2])^2).
    NodePtr diff = AddRowVector(x, Constant(Tensor(1, 2, {-1.0f, -2.0f})));
    NodePtr loss = SumAll(Mul(diff, diff));
    adam.ZeroGrad();
    Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(x->value.at(0, 0), 1.0f, 1e-2);
  EXPECT_NEAR(x->value.at(0, 1), 2.0f, 1e-2);
}

TEST(OptimizerTest, ZeroGradClearsAccumulation) {
  NodePtr x = MakeLeaf(Tensor(1, 1, {2.0f}), /*requires_grad=*/true);
  Sgd sgd({x}, 0.0001f);
  Backward(SumAll(Mul(x, x)));
  const float g1 = x->grad.ScalarValue();
  sgd.ZeroGrad();
  EXPECT_EQ(x->grad.ScalarValue(), 0.0f);
  Backward(SumAll(Mul(x, x)));
  EXPECT_NEAR(x->grad.ScalarValue(), g1, 1e-4);
}

TEST(TrainingTest, MlpLearnsXor) {
  Rng rng(3);
  Mlp mlp(&rng, 2, {8, 1}, Activation::kTanh);
  NodePtr x = Constant(Tensor(4, 2, {0, 0, 0, 1, 1, 0, 1, 1}));
  Tensor pos_w(4, 1, {0, 1, 1, 0});  // XOR labels as loss weights.
  Tensor neg_w(4, 1, {1, 0, 0, 1});
  Adam adam(mlp.Parameters(), 0.05f);
  double first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < 300; ++i) {
    NodePtr logits = mlp.Forward(x);
    NodePtr loss =
        Add(WeightedSoftplusSum(logits, pos_w, -1.0f),
            WeightedSoftplusSum(logits, neg_w, 1.0f));
    if (i == 0) first_loss = loss->value.ScalarValue();
    last_loss = loss->value.ScalarValue();
    adam.ZeroGrad();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last_loss, 0.1 * first_loss);
  // Predictions order correctly.
  NodePtr probs = Sigmoid(mlp.Forward(x));
  EXPECT_GT(probs->value.at(1, 0), 0.5f);
  EXPECT_GT(probs->value.at(2, 0), 0.5f);
  EXPECT_LT(probs->value.at(0, 0), 0.5f);
  EXPECT_LT(probs->value.at(3, 0), 0.5f);
}

TEST(TrainingTest, EmbeddingLearnsPerIdTargets) {
  Rng rng(5);
  Embedding table(&rng, 4, 1);
  Adam adam(table.Parameters(), 0.1f);
  const std::vector<int> ids = {0, 1, 2, 3};
  const Tensor targets(4, 1, {0.1f, -0.2f, 0.3f, 0.7f});
  for (int i = 0; i < 300; ++i) {
    NodePtr out = table.Forward(ids);
    NodePtr diff = Sub(out, Constant(targets));
    adam.ZeroGrad();
    Backward(SumAll(Mul(diff, diff)));
    adam.Step();
  }
  NodePtr out = table.Forward(ids);
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(out->value.at(r, 0), targets.at(r, 0), 1e-2);
  }
}

TEST(TrainingTest, GruLearnsToRememberFirstInput) {
  // Target: output after 4 steps equals the first step's input sign.
  Rng rng(11);
  GruCell gru(&rng, 1, 6);
  Linear head(&rng, 6, 1);
  std::vector<NodePtr> params = gru.Parameters();
  for (const NodePtr& p : head.Parameters()) params.push_back(p);
  Adam adam(params, 0.03f);

  Rng data_rng(17);
  double last_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    constexpr int kBatch = 16;
    Tensor first(kBatch, 1);
    std::vector<Tensor> inputs;
    for (int t = 0; t < 4; ++t) {
      Tensor in(kBatch, 1);
      for (int r = 0; r < kBatch; ++r) {
        const float v = data_rng.Bernoulli(0.5) ? 1.0f : -1.0f;
        in.at(r, 0) = v;
        if (t == 0) first.at(r, 0) = v > 0 ? 1.0f : 0.0f;
      }
      inputs.push_back(std::move(in));
    }
    NodePtr h = gru.InitialState(kBatch);
    for (const Tensor& in : inputs) h = gru.Step(Constant(in), h);
    NodePtr logits = head.Forward(h);
    Tensor pos = first;
    Tensor neg(kBatch, 1);
    for (int r = 0; r < kBatch; ++r) neg.at(r, 0) = 1.0f - pos.at(r, 0);
    NodePtr loss = ScalarMul(
        Add(WeightedSoftplusSum(logits, pos, -1.0f),
            WeightedSoftplusSum(logits, neg, 1.0f)),
        1.0f / kBatch);
    last_loss = loss->value.ScalarValue();
    adam.ZeroGrad();
    Backward(loss);
    adam.Step();
  }
  // Memorizing one bit across 4 steps should reach near-zero loss.
  EXPECT_LT(last_loss, 0.2);
}

TEST(TrainingTest, ModuleParameterCount) {
  Rng rng(1);
  Linear linear(&rng, 3, 4);
  EXPECT_EQ(linear.ParameterCount(), 3 * 4 + 4);
  Mlp mlp(&rng, 2, {5, 1}, Activation::kRelu);
  EXPECT_EQ(mlp.ParameterCount(), (2 * 5 + 5) + (5 * 1 + 1));
  GruCell gru(&rng, 2, 3);
  EXPECT_EQ(gru.ParameterCount(), 3 * (2 * 3 + 3 * 3 + 3));
}

TEST(TrainingTest, SetFinalBiasAnchorsSigmoidPrior) {
  Rng rng(2);
  Mlp mlp(&rng, 3, {4, 1}, Activation::kRelu);
  mlp.SetFinalBias(1.4f);
  // With zero input the hidden ReLU output may be nonzero; use the bias
  // directly: feed zeros through a fresh graph and check the logit is
  // near the bias (hidden contribution is small at init).
  NodePtr out = mlp.Forward(Constant(Tensor(1, 3)));
  EXPECT_NEAR(out->value.ScalarValue(), 1.4f, 0.75f);
}

}  // namespace
}  // namespace uae::nn
