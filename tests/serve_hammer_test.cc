// Hot-swap hammer: scorer threads pound serve::Engine while a swapper
// thread republishes snapshots as fast as it can. Run under
// ThreadSanitizer by tools/check_tsan.sh (label: concurrency); a clean
// pass means the snapshot publication, the sharded session cache,
// the dispatcher queue, and the observability plane (flight-recorder
// ring, SLO tracker, Prometheus registry render) race nothing under
// real schedules.
//
// Beyond data races, the invariants checked here are the serving
// contract: every response is scored against exactly one published
// snapshot (its version tag is one of the published ones — never 0,
// never a mix), and scoring never fails just because a swap happened.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry_export.h"
#include "data/world.h"
#include "models/registry.h"
#include "serve/engine.h"
#include "serve/flight_recorder.h"
#include "serve/model_snapshot.h"
#include "serve/rollout.h"
#include "serve/shard_router.h"
#include "serve/slo.h"

namespace uae::serve {
namespace {

std::shared_ptr<const ModelSnapshot> BuildSnapshot(const data::World& world,
                                                   uint64_t seed,
                                                   uint64_t version) {
  Rng rng(seed);
  std::shared_ptr<models::Recommender> model = models::CreateRecommender(
      models::ModelKind::kLr, &rng, world.schema(), models::ModelConfig());
  auto tower = std::make_shared<attention::AttentionTower>(
      &rng, world.schema(), attention::TowerConfig());
  return ModelSnapshot::FromModules(world.schema(), std::move(model),
                                    std::move(tower), /*gamma=*/1.0f,
                                    version);
}

TEST(ServeHammerTest, HotSwapUnderConcurrentScoring) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 33);

  // Two alternating bundles with pinned versions; the swapper flips
  // between them so stale-cache invalidation runs constantly.
  const std::shared_ptr<const ModelSnapshot> a = BuildSnapshot(world, 1, 101);
  const std::shared_ptr<const ModelSnapshot> b = BuildSnapshot(world, 2, 102);

  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 4;
  Engine engine(a, config);

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kSwaps = 200;

  std::atomic<int> completed{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(100 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        const StatusOr<ScoreResponse> response =
            engine.Score(std::move(req));
        // Swaps must never fail a request; the queue is unbounded enough
        // for this load, so every response comes back scored.
        if (!response.ok()) continue;
        ++completed;
        const uint64_t version = response.value().snapshot_version;
        if (version != 101 && version != 102) bad_version = true;
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < kSwaps; ++i) {
      engine.Swap(i % 2 == 0 ? b : a);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : scorers) t.join();
  swapper.join();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  EXPECT_FALSE(bad_version.load());
}

// Rollout hammer: scorer threads drive traffic through a
// RolloutController while a rollback thread begins and aborts rollouts
// as fast as it can — the staged-promotion machinery (cohort routing,
// candidate pinning, mid-flight rollback re-publication) under real
// schedules. Every response must still come from one of the two pinned
// versions and scoring must never fail just because the rollout state
// machine moved underneath it.
TEST(ServeHammerTest, RolloutAndRollbackUnderConcurrentScoring) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 34);

  const std::shared_ptr<const ModelSnapshot> incumbent =
      BuildSnapshot(world, 3, 103);
  const std::shared_ptr<const ModelSnapshot> candidate =
      BuildSnapshot(world, 4, 104);

  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 4;
  Engine engine(incumbent, config);

  RolloutConfig rc;
  rc.canary_fraction = 0.5;
  rc.ramp_fraction = 0.75;
  // A stage window larger than the whole run: no cycle can organically
  // promote, so every Abort rolls back from canary and the incumbent
  // must win in the end, however the threads interleave. (Promotion and
  // post-promotion rollback have deterministic units in
  // serve_resilience_test.)
  rc.stage_requests = 1000000;
  rc.health.thresholds.max_latency_ratio = 0.0;
  RolloutController rollout(&engine, rc);

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kRolloutCycles = 50;

  std::atomic<int> completed{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(200 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        const StatusOr<ScoreResponse> response =
            rollout.Score(std::move(req));
        if (!response.ok()) continue;
        ++completed;
        const uint64_t version = response.value().snapshot_version;
        if (version != 103 && version != 104) bad_version = true;
      }
    });
  }
  std::thread roller([&] {
    for (int i = 0; i < kRolloutCycles; ++i) {
      // BeginRollout fails harmlessly when a previous cycle's rollout is
      // mid-flight; Abort rolls whatever is active back.
      (void)rollout.BeginRollout(candidate);
      std::this_thread::yield();
      rollout.Abort();
    }
  });
  for (std::thread& t : scorers) t.join();
  roller.join();
  rollout.Abort();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  EXPECT_FALSE(bad_version.load());
  // However the race played out, the rollback path always re-pins the
  // incumbent in the end.
  EXPECT_EQ(engine.snapshot()->version(), 103u);
}

// Observability hammer: scorer threads and a swapper pound the engine
// while an exporter thread renders the whole telemetry registry and an
// observer drains the flight-recorder ring as fast as they can — the
// lock-free ring (seqlock slots), the rolling exemplar distribution,
// the SLO tracker, and the registry snapshot under real schedules. A
// TSan-clean pass means watching the engine never races serving it;
// the invariants checked are the recorder's: every snapshot is
// internally consistent (ids strictly increasing, stamps ordered) and
// every terminal outcome was recorded exactly once.
TEST(ServeHammerTest, ExporterAndRecorderUnderConcurrentScoring) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 35);

  const std::shared_ptr<const ModelSnapshot> a = BuildSnapshot(world, 5, 105);
  const std::shared_ptr<const ModelSnapshot> b = BuildSnapshot(world, 6, 106);

  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 4;
  // Tiny ring so the scorers wrap it many times over while the observer
  // reads — the recycled-slot re-check path runs for real.
  config.recorder.capacity = 16;
  config.recorder.exemplar_min_samples = 8;
  config.slo.enabled = true;
  config.slo.latency_p99_s = 0.5;
  config.slo.short_window = 16;
  config.slo.long_window = 64;
  Engine engine(a, config);

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kSwaps = 100;

  std::atomic<int> completed{0};
  std::atomic<bool> stop_observers{false};
  std::atomic<bool> torn_record{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(300 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        if (engine.Score(std::move(req)).ok()) ++completed;
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < kSwaps; ++i) {
      engine.Swap(i % 2 == 0 ? b : a);
      std::this_thread::yield();
    }
  });
  // The exporter the way production runs it: full registry render (every
  // counter/gauge/histogram the scorers are updating) in a tight loop.
  std::thread exporter([&] {
    while (!stop_observers.load(std::memory_order_relaxed)) {
      const std::string text = telemetry::RenderPrometheusText();
      ASSERT_FALSE(text.empty());
    }
  });
  std::thread observer([&] {
    while (!stop_observers.load(std::memory_order_relaxed)) {
      const std::vector<FlightRecord> records =
          engine.flight_recorder().Snapshot();
      uint64_t last_id = 0;
      for (const FlightRecord& record : records) {
        if (record.id <= last_id || record.respond_s < record.dispatch_s ||
            record.dispatch_s < record.enqueue_s) {
          torn_record = true;
        }
        last_id = record.id;
      }
    }
  });
  for (std::thread& t : scorers) t.join();
  swapper.join();
  stop_observers = true;
  exporter.join();
  observer.join();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  EXPECT_FALSE(torn_record.load());
  // Every terminal outcome was recorded exactly once, wraps included.
  EXPECT_GE(engine.flight_recorder().total_recorded(),
            static_cast<uint64_t>(completed.load()));
  // The SLO tracker saw the same traffic.
  ASSERT_NE(engine.slo(), nullptr);
  int64_t slo_total = 0;
  for (const SloTracker::StreamStatus& stream :
       engine.slo()->GetStatus().streams) {
    slo_total = std::max(slo_total, stream.total);
  }
  EXPECT_EQ(slo_total, completed.load());
}

// Drift hammer: scorer threads and a swapper pound a drift-enabled
// engine while an observer thread reads the monitor every way the
// production plane does — GetStatus (full verdict copy under the
// mutex), AdvisoryScore/drifting (lock-free atomics), and explicit
// Flush (the exporter final-flush hook's path) — as fast as it can. A
// TSan-clean pass means watching the drift plane never races feeding
// it. Invariant: the monitor saw exactly one sample per completed
// request (batch merges neither drop nor double-count under real
// schedules).
TEST(ServeHammerTest, DriftMonitorUnderConcurrentScoring) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 36);

  const std::shared_ptr<const ModelSnapshot> a = BuildSnapshot(world, 7, 107);
  const std::shared_ptr<const ModelSnapshot> b = BuildSnapshot(world, 8, 108);

  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 4;
  // A small window so rotations and judgements happen many times while
  // the scorers are still running.
  config.drift.enabled = true;
  config.drift.window = 32;
  config.drift.min_samples = 16;
  Engine engine(a, config);
  ASSERT_NE(engine.drift(), nullptr);

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kSwaps = 100;

  std::atomic<int> completed{0};
  std::atomic<bool> stop_observer{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(400 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        if (engine.Score(std::move(req)).ok()) ++completed;
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < kSwaps; ++i) {
      engine.Swap(i % 2 == 0 ? b : a);
      std::this_thread::yield();
    }
  });
  std::thread observer([&] {
    while (!stop_observer.load(std::memory_order_relaxed)) {
      const DriftStatus status = engine.drift()->GetStatus();
      ASSERT_GE(status.samples, 0);
      (void)engine.drift()->AdvisoryScore();
      (void)engine.drift()->drifting();
      engine.drift()->Flush();
    }
  });
  for (std::thread& t : scorers) t.join();
  swapper.join();
  stop_observer = true;
  observer.join();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  const DriftStatus status = engine.drift()->GetStatus();
  EXPECT_EQ(status.samples, completed.load());
}

// Shard-router hammer: scorer threads push traffic through a 4-shard
// ShardRouter — consistent-hash routing plus a full wire encode/decode
// round trip per request — while per-shard swappers republish snapshots
// underneath the fleet and an observer renders the telemetry registry
// and polls fleet_status() as fast as it can. A TSan-clean pass means
// the router's fleet state, the per-shard engines, the wire counters,
// and the ring share nothing hot. Invariants: no request fails, every
// response carries one of the pinned versions, and the per-shard
// request counters account for every routed request exactly once.
TEST(ServeHammerTest, ShardRouterUnderConcurrentScoringAndSwaps) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 37);

  constexpr int kShards = 4;
  const std::shared_ptr<const ModelSnapshot> incumbent =
      BuildSnapshot(world, 9, 109);
  std::vector<std::shared_ptr<const ModelSnapshot>> alternates;
  for (int s = 0; s < kShards; ++s) {
    alternates.push_back(BuildSnapshot(
        world, 10 + static_cast<uint64_t>(s), 110 + static_cast<uint64_t>(s)));
  }

  ShardRouterConfig config;
  config.shards = kShards;
  config.engine.max_wait_us = 0;
  config.engine.max_batch = 4;
  ShardRouter router(incumbent, config);

  telemetry::Counter* shard_requests[kShards];
  for (int s = 0; s < kShards; ++s) {
    shard_requests[s] = telemetry::GetCounter(
        "uae.serve.shard." + std::to_string(s) + ".requests");
  }
  int64_t shard_before = 0;
  for (int s = 0; s < kShards; ++s) shard_before += shard_requests[s]->Get();

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kSwaps = 100;

  std::atomic<int> completed{0};
  std::atomic<bool> bad_version{false};
  std::atomic<bool> stop_observer{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(500 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        const StatusOr<ScoreResponse> response = router.Score(std::move(req));
        if (!response.ok()) continue;
        ++completed;
        const uint64_t version = response.value().snapshot_version;
        if (version != 109 &&
            (version < 110 || version >= 110 + kShards)) {
          bad_version = true;
        }
      }
    });
  }
  // One swapper per shard: hot-swaps land on every shard while the
  // router keeps routing through them.
  std::vector<std::thread> swappers;
  for (int s = 0; s < kShards; ++s) {
    swappers.emplace_back([&, s] {
      for (int i = 0; i < kSwaps; ++i) {
        router.shard(s)->engine()->Swap(
            i % 2 == 0 ? alternates[static_cast<size_t>(s)] : incumbent);
        std::this_thread::yield();
      }
    });
  }
  std::thread observer([&] {
    while (!stop_observer.load(std::memory_order_relaxed)) {
      const std::string text = telemetry::RenderPrometheusText();
      ASSERT_FALSE(text.empty());
      const FleetStatus fleet = router.fleet_status();
      ASSERT_EQ(fleet.stage, FleetStage::kIdle);  // No rollout in flight.
    }
  });
  for (std::thread& t : scorers) t.join();
  for (std::thread& t : swappers) t.join();
  stop_observer = true;
  observer.join();
  router.Stop();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  EXPECT_FALSE(bad_version.load());
  // Per-shard accounting: every request routed to exactly one shard.
  int64_t shard_after = 0;
  for (int s = 0; s < kShards; ++s) shard_after += shard_requests[s]->Get();
  EXPECT_EQ(shard_after - shard_before,
            static_cast<int64_t>(kScorers) * kRequestsPerScorer);
}

}  // namespace
}  // namespace uae::serve
