// Hot-swap hammer: scorer threads pound serve::Engine while a swapper
// thread republishes snapshots as fast as it can. Run under
// ThreadSanitizer by tools/check_tsan.sh (label: concurrency); a clean
// pass means the snapshot publication, the sharded session cache,
// and the dispatcher queue race nothing under real schedules.
//
// Beyond data races, the invariants checked here are the serving
// contract: every response is scored against exactly one published
// snapshot (its version tag is one of the published ones — never 0,
// never a mix), and scoring never fails just because a swap happened.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "data/world.h"
#include "models/registry.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/rollout.h"

namespace uae::serve {
namespace {

std::shared_ptr<const ModelSnapshot> BuildSnapshot(const data::World& world,
                                                   uint64_t seed,
                                                   uint64_t version) {
  Rng rng(seed);
  std::shared_ptr<models::Recommender> model = models::CreateRecommender(
      models::ModelKind::kLr, &rng, world.schema(), models::ModelConfig());
  auto tower = std::make_shared<attention::AttentionTower>(
      &rng, world.schema(), attention::TowerConfig());
  return ModelSnapshot::FromModules(world.schema(), std::move(model),
                                    std::move(tower), /*gamma=*/1.0f,
                                    version);
}

TEST(ServeHammerTest, HotSwapUnderConcurrentScoring) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 33);

  // Two alternating bundles with pinned versions; the swapper flips
  // between them so stale-cache invalidation runs constantly.
  const std::shared_ptr<const ModelSnapshot> a = BuildSnapshot(world, 1, 101);
  const std::shared_ptr<const ModelSnapshot> b = BuildSnapshot(world, 2, 102);

  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 4;
  Engine engine(a, config);

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kSwaps = 200;

  std::atomic<int> completed{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(100 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        const StatusOr<ScoreResponse> response =
            engine.Score(std::move(req));
        // Swaps must never fail a request; the queue is unbounded enough
        // for this load, so every response comes back scored.
        if (!response.ok()) continue;
        ++completed;
        const uint64_t version = response.value().snapshot_version;
        if (version != 101 && version != 102) bad_version = true;
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < kSwaps; ++i) {
      engine.Swap(i % 2 == 0 ? b : a);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : scorers) t.join();
  swapper.join();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  EXPECT_FALSE(bad_version.load());
}

// Rollout hammer: scorer threads drive traffic through a
// RolloutController while a rollback thread begins and aborts rollouts
// as fast as it can — the staged-promotion machinery (cohort routing,
// candidate pinning, mid-flight rollback re-publication) under real
// schedules. Every response must still come from one of the two pinned
// versions and scoring must never fail just because the rollout state
// machine moved underneath it.
TEST(ServeHammerTest, RolloutAndRollbackUnderConcurrentScoring) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 32;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 30;
  const data::World world(cfg, 34);

  const std::shared_ptr<const ModelSnapshot> incumbent =
      BuildSnapshot(world, 3, 103);
  const std::shared_ptr<const ModelSnapshot> candidate =
      BuildSnapshot(world, 4, 104);

  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 4;
  Engine engine(incumbent, config);

  RolloutConfig rc;
  rc.canary_fraction = 0.5;
  rc.ramp_fraction = 0.75;
  // A stage window larger than the whole run: no cycle can organically
  // promote, so every Abort rolls back from canary and the incumbent
  // must win in the end, however the threads interleave. (Promotion and
  // post-promotion rollback have deterministic units in
  // serve_resilience_test.)
  rc.stage_requests = 1000000;
  rc.health.thresholds.max_latency_ratio = 0.0;
  RolloutController rollout(&engine, rc);

  constexpr int kScorers = 4;
  constexpr int kRequestsPerScorer = 120;
  constexpr int kRolloutCycles = 50;

  std::atomic<int> completed{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> scorers;
  for (int s = 0; s < kScorers; ++s) {
    scorers.emplace_back([&, s] {
      Rng rng(200 + static_cast<uint64_t>(s));
      for (int i = 0; i < kRequestsPerScorer; ++i) {
        ScoreRequest req;
        req.user = static_cast<int>(rng.UniformInt(cfg.num_users));
        const int hour = static_cast<int>(rng.UniformInt(24));
        const int weekday = static_cast<int>(rng.UniformInt(7));
        std::vector<int> played = {world.SampleSong(&rng),
                                   world.SampleSong(&rng)};
        req.history =
            world.SimulateSession(req.user, played, hour, weekday, &rng)
                .events;
        for (int c = 0; c < 2; ++c) {
          const int song = world.SampleSong(&rng);
          req.candidate_songs.push_back(song);
          req.candidates.push_back(
              world.ScoringEvent(req.user, song, hour, weekday));
        }
        const StatusOr<ScoreResponse> response =
            rollout.Score(std::move(req));
        if (!response.ok()) continue;
        ++completed;
        const uint64_t version = response.value().snapshot_version;
        if (version != 103 && version != 104) bad_version = true;
      }
    });
  }
  std::thread roller([&] {
    for (int i = 0; i < kRolloutCycles; ++i) {
      // BeginRollout fails harmlessly when a previous cycle's rollout is
      // mid-flight; Abort rolls whatever is active back.
      (void)rollout.BeginRollout(candidate);
      std::this_thread::yield();
      rollout.Abort();
    }
  });
  for (std::thread& t : scorers) t.join();
  roller.join();
  rollout.Abort();

  EXPECT_EQ(completed.load(), kScorers * kRequestsPerScorer);
  EXPECT_FALSE(bad_version.load());
  // However the race played out, the rollback path always re-pins the
  // incumbent in the end.
  EXPECT_EQ(engine.snapshot()->version(), 103u);
}

}  // namespace
}  // namespace uae::serve
