#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace uae::trace {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "uae_trace_" + name;
}

struct ParsedSpan {
  std::string name;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double Arg(const json::Value& event, const std::string& key) const {
    const json::Value* args = event.Find("args");
    return args != nullptr ? args->GetNumber(key, -1.0) : -1.0;
  }
};

/// Loads an export and returns its "X" spans; hard-fails on malformed
/// JSON (the export must be loadable by Perfetto, so any parse error is
/// a test failure, not a skip).
std::vector<json::Value> LoadSpans(const std::string& path) {
  StatusOr<json::Value> doc = json::ParseFile(path);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return {};
  const json::Value* events = doc.value().Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return {};
  std::vector<json::Value> spans;
  for (const json::Value& event : events->array) {
    if (event.GetString("ph") == "X") spans.push_back(event);
  }
  return spans;
}

/// Strict well-nestedness check on one thread's timeline: sorted by
/// start (ties: longer first), every span must lie fully inside the
/// innermost still-open enclosing span. Any shear means a torn ring
/// slot or a tracer bug.
void ExpectWellNested(std::vector<const json::Value*> spans, int tid) {
  std::sort(spans.begin(), spans.end(),
            [](const json::Value* a, const json::Value* b) {
              const double ta = a->GetNumber("ts"), tb = b->GetNumber("ts");
              if (ta != tb) return ta < tb;
              return a->GetNumber("dur") > b->GetNumber("dur");
            });
  std::vector<const json::Value*> stack;
  for (const json::Value* span : spans) {
    const double ts = span->GetNumber("ts");
    const double end = ts + span->GetNumber("dur");
    while (!stack.empty() &&
           stack.back()->GetNumber("ts") + stack.back()->GetNumber("dur") <=
               ts) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      const double parent_end = stack.back()->GetNumber("ts") +
                                stack.back()->GetNumber("dur");
      EXPECT_LE(end, parent_end + 1e-6)
          << "tid " << tid << ": span \"" << span->GetString("name")
          << "\" shears out of \"" << stack.back()->GetString("name")
          << "\"";
    }
    stack.push_back(span);
  }
}

TEST(TraceTest, DisabledByDefaultAndRecordsNothing) {
  ASSERT_FALSE(Enabled());  // UAE_TRACE_PATH must be unset for the suite.
  {
    Span span("should.not.record");
    Instant("nor.this");
  }
  const std::string path = TempPath("disabled.json");
  ASSERT_TRUE(Start(path));
  ASSERT_TRUE(Stop());  // Session held zero events.
  EXPECT_TRUE(LoadSpans(path).empty());
  std::remove(path.c_str());
}

TEST(TraceTest, ExportsNestedSpansWithArgs) {
  const std::string path = TempPath("basic.json");
  ASSERT_TRUE(Start(path));
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(TracePath(), path);
  {
    Span epoch("test.epoch", "epoch", 3);
    {
      Span batch("test.batch", "batch", 7, "epoch", 3);
      Instant("test.blip", "code", 42);
    }
    { Span batch("test.batch", "batch", 8, "epoch", 3); }
  }
  ASSERT_TRUE(Stop());
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(Stop());  // Idempotent.

  StatusOr<json::Value> doc = json::ParseFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);

  int spans = 0, instants = 0;
  double epoch_ts = 0, epoch_end = 0;
  for (const json::Value& event : events->array) {
    const std::string phase = event.GetString("ph");
    const std::string name = event.GetString("name");
    if (phase == "X") {
      ++spans;
      if (name == "test.epoch") {
        epoch_ts = event.GetNumber("ts");
        epoch_end = epoch_ts + event.GetNumber("dur");
        EXPECT_DOUBLE_EQ(event.Find("args")->GetNumber("epoch"), 3.0);
      }
    } else if (phase == "i") {
      ++instants;
      EXPECT_EQ(name, "test.blip");
      EXPECT_EQ(event.GetString("s"), "t");  // Thread-scoped instant.
      EXPECT_DOUBLE_EQ(event.Find("args")->GetNumber("code"), 42.0);
    }
  }
  EXPECT_EQ(spans, 3);
  EXPECT_EQ(instants, 1);

  // Both batches nest inside the epoch span.
  for (const json::Value& event : events->array) {
    if (event.GetString("ph") != "X" ||
        event.GetString("name") != "test.batch") {
      continue;
    }
    EXPECT_GE(event.GetNumber("ts"), epoch_ts);
    EXPECT_LE(event.GetNumber("ts") + event.GetNumber("dur"),
              epoch_end + 1e-6);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, MultithreadedRoundTripIsCompleteAndWellNested) {
  constexpr int kThreads = 8;
  constexpr int kOuterPerThread = 300;  // 900 events/thread << capacity.
  ASSERT_LT(kThreads * kOuterPerThread * 3,
            static_cast<int>(BufferCapacity() * kThreads));

  const std::string path = TempPath("mt.json");
  ASSERT_TRUE(Start(path));
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kOuterPerThread; ++i) {
        Span outer("mt.outer", "worker", t, "i", i);
        Span mid("mt.mid");
        { Span inner("mt.inner", "i", i); }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_TRUE(Stop());
  EXPECT_EQ(DroppedEvents(), 0u);

  const std::vector<json::Value> spans = LoadSpans(path);
  std::map<std::string, int> by_name;
  std::map<int, std::vector<const json::Value*>> by_tid;
  std::map<int, int> outers_per_tid;
  for (const json::Value& span : spans) {
    by_name[span.GetString("name")]++;
    const int tid = static_cast<int>(span.GetNumber("tid"));
    by_tid[tid].push_back(&span);
    if (span.GetString("name") == "mt.outer") outers_per_tid[tid]++;
  }
  // No dropped or duplicated pairs anywhere.
  EXPECT_EQ(by_name["mt.outer"], kThreads * kOuterPerThread);
  EXPECT_EQ(by_name["mt.mid"], kThreads * kOuterPerThread);
  EXPECT_EQ(by_name["mt.inner"], kThreads * kOuterPerThread);
  // Each worker landed on its own thread timeline, whole.
  ASSERT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : outers_per_tid) {
    EXPECT_EQ(count, kOuterPerThread) << "tid " << tid;
  }
  for (auto& [tid, tid_spans] : by_tid) {
    ExpectWellNested(tid_spans, tid);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, RingOverwritesOldestAndCountsDrops) {
  const std::string path = TempPath("wrap.json");
  ASSERT_TRUE(Start(path));
  const int overshoot = static_cast<int>(BufferCapacity()) + 500;
  for (int i = 0; i < overshoot; ++i) {
    Span span("wrap.span", "i", i);
  }
  ASSERT_TRUE(Stop());
  EXPECT_GE(DroppedEvents(), 500u);

  // The survivors are the newest events, still parseable.
  const std::vector<json::Value> spans = LoadSpans(path);
  EXPECT_LE(spans.size(), BufferCapacity());
  double max_i = -1.0;
  for (const json::Value& span : spans) {
    if (span.GetString("name") == "wrap.span") {
      max_i = std::max(max_i, span.Find("args")->GetNumber("i"));
    }
  }
  EXPECT_DOUBLE_EQ(max_i, overshoot - 1);
  std::remove(path.c_str());
}

TEST(TraceTest, RestartDiscardsPreviousSession) {
  const std::string first = TempPath("s1.json");
  const std::string second = TempPath("s2.json");
  ASSERT_TRUE(Start(first));
  { Span span("session.one"); }
  // Restart without Stop: session one's events must not leak into two.
  ASSERT_TRUE(Start(second));
  { Span span("session.two"); }
  ASSERT_TRUE(Stop());
  const std::vector<json::Value> spans = LoadSpans(second);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].GetString("name"), "session.two");
  EXPECT_FALSE(Start(""));  // An empty path cannot be a session.
  std::remove(first.c_str());
  std::remove(second.c_str());
}

}  // namespace
}  // namespace uae::trace
