// Unit tests for the continuous-learning loop (DESIGN.md §16): ingest
// grouping and Eq. 18/19 weighting, the retrain-advisory tail's
// exactly-once delivery across restarts, and the headline determinism
// golden — one feedback log, one config, and the full ingest → train →
// publish → promote cycle must produce bit-identical candidate
// parameter bytes AND bit-identical served scores at any
// UAE_NUM_THREADS.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attention/reweight.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/world.h"
#include "gtest/gtest.h"
#include "learn/bridge.h"
#include "learn/feedback_log.h"
#include "learn/ingest.h"
#include "learn/learn_loop.h"
#include "models/registry.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/rollout.h"

namespace uae::learn {
namespace {

data::GeneratorConfig SmallWorldConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 150;
  cfg.num_users = 40;
  cfg.num_songs = 100;
  cfg.num_artists = 20;
  cfg.num_albums = 40;
  return cfg;
}

FeedbackRecord MakeRecord(uint64_t request_id, int step, int user, int song,
                          data::FeedbackAction action, float alpha) {
  FeedbackRecord record;
  record.user = user;
  record.song = song;
  record.hour = 10;
  record.weekday = 2;
  record.action = static_cast<uint8_t>(action);
  record.alpha_hat = alpha;
  record.request_id = request_id;
  record.step = step;
  record.timestamp_us = static_cast<int64_t>(request_id) * 1000 + step;
  return record;
}

TEST(BuildTrainingBatchTest, GroupsWalksSortsStepsAndWeights) {
  const data::World world(SmallWorldConfig(), /*seed=*/11);
  const int64_t invalid_before =
      telemetry::GetCounter("uae.learn.ingest.invalid_records")->Get();

  // Two interleaved walks, steps deliberately out of order, plus one
  // provably invalid record (negative user) that must be dropped.
  std::vector<FeedbackRecord> records;
  records.push_back(MakeRecord(7, 1, 3, 10, data::FeedbackAction::kAutoPlay,
                               0.25f));
  records.push_back(
      MakeRecord(3, 0, 5, 20, data::FeedbackAction::kSkip, 0.75f));
  records.push_back(
      MakeRecord(7, 0, 3, 11, data::FeedbackAction::kLike, 0.9f));
  records.push_back(
      MakeRecord(9, 0, -1, 10, data::FeedbackAction::kLike, 0.5f));

  DatasetBuildConfig config;
  config.gamma = 0.5f;
  StatusOr<IngestedBatch> batch =
      BuildTrainingBatch(world, records, config);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().records, 3);
  EXPECT_EQ(telemetry::GetCounter("uae.learn.ingest.invalid_records")
                    ->Get() -
                invalid_before,
            1);

  // Walks appear in first-seen request order (7 before 3), each sorted
  // by step; the observed action overrides the scoring default.
  const data::Dataset& dataset = batch.value().dataset;
  ASSERT_EQ(dataset.sessions.size(), 2u);
  EXPECT_EQ(dataset.sessions[0].user, 3);
  ASSERT_EQ(dataset.sessions[0].events.size(), 2u);
  EXPECT_EQ(dataset.sessions[0].events[0].action,
            data::FeedbackAction::kLike);
  EXPECT_EQ(dataset.sessions[0].events[1].action,
            data::FeedbackAction::kAutoPlay);
  EXPECT_EQ(dataset.sessions[1].user, 5);
  ASSERT_EQ(dataset.sessions[1].events.size(), 1u);
  EXPECT_EQ(dataset.sessions[1].events[0].action,
            data::FeedbackAction::kSkip);

  // Eq. 18: weight 1 on active events; Eq. 19 reweight of the
  // serve-time alpha-hat on passive ones.
  ASSERT_NE(batch.value().weights, nullptr);
  EXPECT_EQ(batch.value().weights->at(0, 0), 1.0f);
  EXPECT_EQ(batch.value().weights->at(0, 1),
            attention::ReweightFunction(0.25f, 0.5f));
  EXPECT_EQ(batch.value().weights->at(1, 0), 1.0f);

  // The build is a pure function of the record list.
  StatusOr<IngestedBatch> again =
      BuildTrainingBatch(world, records, config);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().dataset.sessions.size(), 2u);
  EXPECT_EQ(again.value().dataset.sessions[0].events[0].sparse,
            dataset.sessions[0].events[0].sparse);
}

TEST(BuildTrainingBatchTest, AllInvalidRecordsFailCleanly) {
  const data::World world(SmallWorldConfig(), /*seed=*/12);
  const std::vector<FeedbackRecord> records = {
      MakeRecord(1, 0, 999999, 0, data::FeedbackAction::kLike, 0.5f)};
  const StatusOr<IngestedBatch> batch =
      BuildTrainingBatch(world, records, DatasetBuildConfig());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Advisory parsing and the exactly-once tail ---------------------

TEST(ParseRetrainAdvisoryTest, ParsesFullRecord) {
  const StatusOr<RetrainAdvisory> advisory = ParseRetrainAdvisory(
      R"({"kind":"retrain_advisory","advisory_seq":5,"slice":"score/all",)"
      R"("signal":"score","psi":0.4,"p_value":0.001,"mean_delta":0.2,)"
      R"("cur_version":3})");
  ASSERT_TRUE(advisory.ok()) << advisory.status().ToString();
  EXPECT_EQ(advisory.value().seq, 5);
  EXPECT_EQ(advisory.value().slice, "score/all");
  EXPECT_EQ(advisory.value().signal, "score");
  EXPECT_DOUBLE_EQ(advisory.value().psi, 0.4);
  EXPECT_DOUBLE_EQ(advisory.value().p_value, 0.001);
  EXPECT_DOUBLE_EQ(advisory.value().mean_delta, 0.2);
  EXPECT_EQ(advisory.value().cur_version, 3u);
}

TEST(ParseRetrainAdvisoryTest, ToleratesMissingSeqRejectsForeignKinds) {
  // Pre-loop advisory logs carry no advisory_seq: sentinel, not error.
  const StatusOr<RetrainAdvisory> old = ParseRetrainAdvisory(
      R"({"kind":"retrain_advisory","signal":"ctr","psi":0.3})");
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old.value().seq, -1);

  EXPECT_FALSE(ParseRetrainAdvisory("not json").ok());
  EXPECT_FALSE(ParseRetrainAdvisory("[1,2,3]").ok());
  EXPECT_FALSE(ParseRetrainAdvisory(R"({"kind":"slo_report"})").ok());
}

std::string AdvisoryLine(int64_t seq) {
  return R"({"kind":"retrain_advisory","advisory_seq":)" +
         std::to_string(seq) +
         R"(,"slice":"score/all","signal":"score","psi":0.5,)"
         R"("p_value":0.001,"mean_delta":0.1,"cur_version":2})" "\n";
}

TEST(AdvisoryTailTest, DeliversExactlyOnceAcrossRestarts) {
  const std::string path = ::testing::TempDir() + "/advisory_tail.jsonl";
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << AdvisoryLine(0) << AdvisoryLine(1) << AdvisoryLine(2);
  }

  AdvisoryTail tail({path});
  std::vector<RetrainAdvisory> advisories;
  ASSERT_TRUE(tail.Poll(&advisories).ok());
  ASSERT_EQ(advisories.size(), 3u);
  EXPECT_EQ(tail.last_seq(), 2);

  // Nothing new: a second poll delivers nothing.
  ASSERT_TRUE(tail.Poll(&advisories).ok());
  EXPECT_EQ(advisories.size(), 3u);

  // A partial trailing line (a writer mid-append) stays carried until
  // its newline arrives.
  {
    std::ofstream out(path, std::ios::app);
    const std::string line = AdvisoryLine(3);
    out << line.substr(0, 20);
  }
  ASSERT_TRUE(tail.Poll(&advisories).ok());
  EXPECT_EQ(advisories.size(), 3u);
  {
    std::ofstream out(path, std::ios::app);
    const std::string line = AdvisoryLine(3);
    out << line.substr(20);
  }
  ASSERT_TRUE(tail.Poll(&advisories).ok());
  ASSERT_EQ(advisories.size(), 4u);
  EXPECT_EQ(advisories[3].seq, 3);

  // A restarted tailer re-reads the whole file but Restore() suppresses
  // already-consumed sequence numbers — an advisory never triggers two
  // cycles across a crash/restart.
  AdvisoryTail restarted({path});
  restarted.Restore(1);
  std::vector<RetrainAdvisory> replay;
  ASSERT_TRUE(restarted.Poll(&replay).ok());
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].seq, 2);
  EXPECT_EQ(replay[1].seq, 3);
  std::remove(path.c_str());
}

TEST(AdvisoryTailTest, SkipsAndCountsUnparsableLines) {
  const std::string path = ::testing::TempDir() + "/advisory_bad.jsonl";
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << AdvisoryLine(0) << "this is not json\n" << AdvisoryLine(1);
  }
  const int64_t errors_before =
      telemetry::GetCounter("uae.learn.advisory.parse_errors")->Get();
  AdvisoryTail tail({path});
  std::vector<RetrainAdvisory> advisories;
  ASSERT_TRUE(tail.Poll(&advisories).ok());
  EXPECT_EQ(advisories.size(), 2u);
  EXPECT_EQ(telemetry::GetCounter("uae.learn.advisory.parse_errors")
                    ->Get() -
                errors_before,
            1);
  std::remove(path.c_str());
}

// ---- The determinism golden -----------------------------------------

struct ServedTape {
  std::string candidate_bytes;  // The published checkpoint, verbatim.
  std::string score_bits;       // Every served score, bit patterns.
  std::vector<std::vector<int>> playlists;
  uint64_t candidate_version = 0;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void AppendBits(std::string* out, const void* data, size_t size) {
  out->append(reinterpret_cast<const char*>(data), size);
}

serve::ScoreRequest MakeScoreRequest(const data::World& world, int user,
                                     Rng* rng) {
  serve::ScoreRequest request;
  request.user = user;
  const int hour = static_cast<int>(rng->UniformInt(24));
  const int weekday = static_cast<int>(rng->UniformInt(7));
  for (int c = 0; c < 12; ++c) {
    const int song = world.SampleSong(rng);
    request.candidate_songs.push_back(song);
    request.candidates.push_back(
        world.ScoringEvent(user, song, hour, weekday));
  }
  return request;
}

/// One full continuous-learning cycle at the given thread count: fresh
/// engine on the incumbent, LearnLoop over the (pre-built, shared)
/// feedback log, promotion under live traffic, then a fixed eval tape
/// served by the promoted snapshot.
ServedTape RunCycleAtThreads(const data::World& world,
                             const std::string& incumbent_path,
                             const std::string& feedback_path,
                             const std::string& candidate_path,
                             int num_threads) {
  parallel::SetNumThreads(num_threads);
  std::remove(candidate_path.c_str());
  ServedTape tape;

  serve::SnapshotSpec spec;
  spec.schema = world.schema();
  spec.kind = models::ModelKind::kLr;
  spec.model_path = incumbent_path;
  StatusOr<std::shared_ptr<const serve::ModelSnapshot>> snapshot =
      serve::ModelSnapshot::Load(spec);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  if (!snapshot.ok()) return tape;

  serve::EngineConfig engine_config;
  engine_config.max_wait_us = 0;
  serve::Engine engine(snapshot.value(), engine_config);
  serve::RolloutConfig rollout_config;
  rollout_config.stage_requests = 32;
  rollout_config.health.thresholds.max_latency_ratio = 0.0;
  // The candidate fine-tuned on feedback the fresh-init incumbent never
  // saw, so it is *supposed* to re-rank; the drift criterion guards
  // unexpected shifts and is off for this promotion (learn_chaos_test
  // covers it catching a genuinely bad candidate).
  rollout_config.health.thresholds.max_score_drift = 0.0;
  serve::RolloutController rollout(&engine, rollout_config);

  LearnLoopConfig loop_config;
  loop_config.ingest.path = feedback_path;
  loop_config.trainer.kind = models::ModelKind::kLr;
  loop_config.trainer.incumbent_path = incumbent_path;
  loop_config.trainer.candidate_path = candidate_path;
  loop_config.trainer.train.epochs = 2;
  loop_config.trainer.train.batch_size = 64;
  loop_config.publisher.schema = world.schema();
  loop_config.publisher.kind = models::ModelKind::kLr;
  loop_config.min_records = 32;
  LearnLoop loop(&world, &rollout, loop_config);

  const StatusOr<CycleReport> cycle = loop.RunCycle(CycleTrigger::kManual);
  EXPECT_TRUE(cycle.ok()) << cycle.status().ToString();
  if (!cycle.ok()) return tape;
  EXPECT_TRUE(cycle.value().published) << cycle.value().skipped_reason;
  tape.candidate_version = cycle.value().candidate_version;
  tape.candidate_bytes = ReadFileBytes(candidate_path);
  EXPECT_FALSE(tape.candidate_bytes.empty());

  // Promotion traffic: identically seeded across thread counts, and
  // never appended to the shared feedback log.
  Rng promo_rng(99);
  for (int window = 0; window < 8; ++window) {
    if (rollout.stage() == serve::RolloutStage::kIdle ||
        rollout.stage() == serve::RolloutStage::kRolledBack) {
      break;
    }
    for (int i = 0; i < rollout_config.stage_requests; ++i) {
      const StatusOr<serve::ScoreResponse> response = rollout.Score(
          MakeScoreRequest(world, i % world.config().num_users,
                           &promo_rng));
      EXPECT_TRUE(response.ok()) << response.status().ToString();
    }
  }
  EXPECT_EQ(rollout.stage(), serve::RolloutStage::kIdle);
  EXPECT_EQ(rollout.rollbacks(), 0);
  EXPECT_EQ(engine.snapshot()->version(), tape.candidate_version);

  // The eval tape: fixed requests against the promoted snapshot.
  Rng eval_rng(1234);
  for (int i = 0; i < 16; ++i) {
    const StatusOr<serve::ScoreResponse> response = engine.Score(
        MakeScoreRequest(world, (i * 7) % world.config().num_users,
                         &eval_rng));
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) continue;
    for (const serve::CandidateScore& cs : response.value().scores) {
      AppendBits(&tape.score_bits, &cs.song, sizeof(cs.song));
      AppendBits(&tape.score_bits, &cs.ctr, sizeof(cs.ctr));
      AppendBits(&tape.score_bits, &cs.alpha, sizeof(cs.alpha));
      AppendBits(&tape.score_bits, &cs.reweighted, sizeof(cs.reweighted));
    }
    tape.playlists.push_back(response.value().playlist);
  }
  return tape;
}

TEST(LearnLoopGolden, CycleIsBitIdenticalAtAnyThreadCount) {
  const std::string dir = ::testing::TempDir();
  const std::string incumbent_path = dir + "/golden_incumbent.ckpt";
  const std::string candidate_path = dir + "/golden_candidate.ckpt";
  const std::string feedback_path = dir + "/golden_feedback.log";
  std::remove(feedback_path.c_str());

  const data::World world(SmallWorldConfig(), /*seed=*/42);
  Rng init_rng(1);
  const std::unique_ptr<models::Recommender> incumbent =
      models::CreateRecommender(models::ModelKind::kLr, &init_rng,
                                world.schema(), models::ModelConfig());
  ASSERT_TRUE(serve::SaveRecommender(*incumbent, models::ModelKind::kLr,
                                     models::ModelConfig(), incumbent_path)
                  .ok());

  // Build the shared feedback log ONCE, serially: incumbent-served
  // traffic whose playlists the simulated users walk.
  {
    serve::SnapshotSpec spec;
    spec.schema = world.schema();
    spec.kind = models::ModelKind::kLr;
    spec.model_path = incumbent_path;
    StatusOr<std::shared_ptr<const serve::ModelSnapshot>> snapshot =
        serve::ModelSnapshot::Load(spec);
    ASSERT_TRUE(snapshot.ok());
    serve::EngineConfig engine_config;
    engine_config.max_wait_us = 0;
    engine_config.playlist_length = 10;
    serve::Engine engine(snapshot.value(), engine_config);
    StatusOr<std::unique_ptr<FeedbackLog>> log =
        FeedbackLog::Open({feedback_path});
    ASSERT_TRUE(log.ok());
    Rng traffic_rng(7);
    for (int i = 0; i < 96; ++i) {
      const int user = i % world.config().num_users;
      const int hour = static_cast<int>(traffic_rng.UniformInt(24));
      const int weekday = static_cast<int>(traffic_rng.UniformInt(7));
      serve::ScoreRequest request;
      request.user = user;
      for (int c = 0; c < 16; ++c) {
        const int song = world.SampleSong(&traffic_rng);
        request.candidate_songs.push_back(song);
        request.candidates.push_back(
            world.ScoringEvent(user, song, hour, weekday));
      }
      const StatusOr<serve::ScoreResponse> response =
          engine.Score(std::move(request));
      ASSERT_TRUE(response.ok());
      const data::Session walk = world.SimulateSession(
          user, response.value().playlist, hour, weekday, &traffic_rng);
      AppendWalk(log.value().get(), walk, response.value().playlist,
                 response.value().scores,
                 response.value().snapshot_version,
                 static_cast<uint64_t>(i), hour, weekday);
    }
    ASSERT_GE(log.value()->records_written(), 64);
  }

  const ServedTape t1 = RunCycleAtThreads(world, incumbent_path,
                                          feedback_path, candidate_path, 1);
  const ServedTape t2 = RunCycleAtThreads(world, incumbent_path,
                                          feedback_path, candidate_path, 2);
  const ServedTape t8 = RunCycleAtThreads(world, incumbent_path,
                                          feedback_path, candidate_path, 8);
  parallel::SetNumThreads(1);

  // The determinism contract, both halves: the candidate's parameter
  // bytes on disk, and every score the promoted snapshot served.
  // (Snapshot *versions* come from a process-wide monotone counter and
  // legitimately differ between the three runs; the served bits do not.)
  EXPECT_TRUE(t1.candidate_bytes == t2.candidate_bytes)
      << "candidate checkpoint bytes differ between 1 and 2 threads";
  EXPECT_TRUE(t1.candidate_bytes == t8.candidate_bytes)
      << "candidate checkpoint bytes differ between 1 and 8 threads";
  EXPECT_TRUE(t1.score_bits == t2.score_bits)
      << "served score bits differ between 1 and 2 threads";
  EXPECT_TRUE(t1.score_bits == t8.score_bits)
      << "served score bits differ between 1 and 8 threads";
  EXPECT_EQ(t1.playlists, t2.playlists);
  EXPECT_EQ(t1.playlists, t8.playlists);

  std::remove(feedback_path.c_str());
  std::remove(incumbent_path.c_str());
  std::remove(candidate_path.c_str());
}

}  // namespace
}  // namespace uae::learn
