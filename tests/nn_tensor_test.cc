#include <gtest/gtest.h>

#include <cmath>

#include "nn/init.h"
#include "nn/tensor.h"

namespace uae::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(TensorTest, RowMajorLayout) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.data()[5], 6.0f);
}

TEST(TensorTest, FullAndScalar) {
  const Tensor full = Tensor::Full(2, 2, 7.0f);
  EXPECT_EQ(full.at(1, 1), 7.0f);
  const Tensor s = Tensor::Scalar(-2.5f);
  EXPECT_EQ(s.ScalarValue(), -2.5f);
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor(2, 3).SameShape(Tensor(2, 3)));
  EXPECT_FALSE(Tensor(2, 3).SameShape(Tensor(3, 2)));
}

TEST(TensorTest, AddScaled) {
  Tensor a(1, 3, {1, 2, 3});
  const Tensor b(1, 3, {10, 20, 30});
  a.AddScaled(b, 0.5f);
  EXPECT_EQ(a.at(0, 0), 6.0f);
  EXPECT_EQ(a.at(0, 1), 12.0f);
  EXPECT_EQ(a.at(0, 2), 18.0f);
}

TEST(TensorTest, SumAndSetZero) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.Sum(), 10.0f);
  t.SetZero();
  EXPECT_EQ(t.Sum(), 0.0f);
}

TEST(TensorTest, DebugString) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.DebugString(), "[2x2] 1 2 / 3 4");
}

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  const Tensor t = XavierUniform(&rng, 30, 70);
  const float bound = std::sqrt(6.0f / 100.0f);
  float max_abs = 0.0f;
  double mean = 0.0;
  for (int i = 0; i < t.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(t.data()[i]));
    mean += t.data()[i];
  }
  EXPECT_LE(max_abs, bound);
  EXPECT_NEAR(mean / t.size(), 0.0, 0.02);
}

TEST(InitTest, NormalInitStddev) {
  Rng rng(2);
  const Tensor t = NormalInit(&rng, 100, 100, 0.05f);
  double sum_sq = 0.0;
  for (int i = 0; i < t.size(); ++i) sum_sq += t.data()[i] * t.data()[i];
  EXPECT_NEAR(std::sqrt(sum_sq / t.size()), 0.05, 0.005);
}

}  // namespace
}  // namespace uae::nn
