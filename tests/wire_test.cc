// Wire-protocol corruption battery (DESIGN.md §15).
//
// The framing contract under attack: every malformed frame — truncated,
// bit-flipped, oversized-length, CRC-mismatched, trailing-garbage —
// must be rejected with a clean kInvalidArgument, no crash and no
// partially-applied request; every well-formed frame must round-trip
// its payload bit-exactly. The corruption corpus is seeded, so a
// failure reproduces byte for byte.

#include <chrono>
#include <cstring>
#include <limits>
#include <string>

#include "common/rng.h"
#include "data/event.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "serve/wire.h"

namespace uae::serve::wire {
namespace {

bool BitsEq(float a, float b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}
bool BitsEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

data::Event MakeEvent(int salt) {
  data::Event e;
  e.sparse = {salt, salt * 31 + 7, -salt};
  e.dense = {0.25f * static_cast<float>(salt), -1.5f, 3.14159f};
  e.action = static_cast<data::FeedbackAction>(salt % 6);
  e.play_seconds = 12.5f + static_cast<float>(salt);
  e.song_duration = 180.0f;
  // Ground truth a production log never carries; must NOT survive the
  // wire.
  e.true_attention = true;
  e.true_alpha = 0.9f;
  e.true_propensity = 0.7f;
  e.true_relevance = 1;
  e.relevance_prob = 0.6f;
  return e;
}

ScoreRequest MakeRequest() {
  ScoreRequest req;
  req.user = 1234567;
  for (int i = 0; i < 5; ++i) req.history.push_back(MakeEvent(i));
  for (int i = 0; i < 3; ++i) {
    req.candidates.push_back(MakeEvent(10 + i));
    req.candidate_songs.push_back(100 + i);
  }
  return req;
}

ScoreResponse MakeResponse() {
  ScoreResponse resp;
  resp.snapshot_version = 0xdeadbeefcafe1234ULL;
  resp.degraded = true;
  resp.degraded_reason = "breaker_open";
  for (int i = 0; i < 4; ++i) {
    CandidateScore cs;
    cs.song = 40 + i;
    cs.ctr = 1.0 / (3.0 + i);  // Not exactly representable: bit test.
    cs.alpha = 0.1f * static_cast<float>(i) - 0.05f;
    cs.reweighted = cs.ctr * 0.81234567890123;
    resp.scores.push_back(cs);
  }
  resp.playlist = {43, 41, 42, 40};
  return resp;
}

void ExpectEventsEqualObservable(const data::Event& a, const data::Event& b) {
  EXPECT_EQ(a.sparse, b.sparse);
  ASSERT_EQ(a.dense.size(), b.dense.size());
  for (size_t i = 0; i < a.dense.size(); ++i) {
    EXPECT_TRUE(BitsEq(a.dense[i], b.dense[i]));
  }
  EXPECT_EQ(a.action, b.action);
  EXPECT_TRUE(BitsEq(a.play_seconds, b.play_seconds));
  EXPECT_TRUE(BitsEq(a.song_duration, b.song_duration));
}

/// Rewrites the CRC trailer so header/payload mutations exercise their
/// own checks instead of tripping the CRC first.
void FixCrc(std::string* frame) {
  ASSERT_GE(frame->size(), kHeaderSize + kTrailerSize);
  const size_t checked = frame->size() - kTrailerSize;
  const uint32_t crc = nn::Crc32(frame->data(), checked);
  (*frame)[checked + 0] = static_cast<char>(crc);
  (*frame)[checked + 1] = static_cast<char>(crc >> 8);
  (*frame)[checked + 2] = static_cast<char>(crc >> 16);
  (*frame)[checked + 3] = static_cast<char>(crc >> 24);
}

TEST(WireFrame, RoundTripsPayloads) {
  for (const std::string payload :
       {std::string(), std::string("x"), std::string(1000, '\xab')}) {
    const std::string frame = EncodeFrame(FrameType::kScoreRequest, payload);
    EXPECT_EQ(frame.size(), kHeaderSize + payload.size() + kTrailerSize);
    const StatusOr<Frame> decoded = DecodeFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, FrameType::kScoreRequest);
    EXPECT_EQ(decoded.value().payload, payload);
  }
}

TEST(WireFrame, EncodingIsDeterministic) {
  const ScoreRequest req = MakeRequest();
  EXPECT_EQ(EncodeScoreRequest(req), EncodeScoreRequest(req));
  const ScoreResponse resp = MakeResponse();
  EXPECT_EQ(EncodeScoreResponse(resp), EncodeScoreResponse(resp));
}

TEST(WireRequest, RoundTripsObservableFieldsBitExactly) {
  const ScoreRequest req = MakeRequest();
  const std::string frame = EncodeScoreRequest(req);
  const StatusOr<Frame> decoded_frame = DecodeFrame(frame);
  ASSERT_TRUE(decoded_frame.ok());
  ASSERT_EQ(decoded_frame.value().type, FrameType::kScoreRequest);
  const StatusOr<ScoreRequest> decoded =
      DecodeScoreRequest(decoded_frame.value().payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ScoreRequest& got = decoded.value();
  EXPECT_EQ(got.user, req.user);
  ASSERT_EQ(got.history.size(), req.history.size());
  for (size_t i = 0; i < req.history.size(); ++i) {
    ExpectEventsEqualObservable(req.history[i], got.history[i]);
  }
  ASSERT_EQ(got.candidates.size(), req.candidates.size());
  for (size_t i = 0; i < req.candidates.size(); ++i) {
    ExpectEventsEqualObservable(req.candidates[i], got.candidates[i]);
  }
  EXPECT_EQ(got.candidate_songs, req.candidate_songs);
  // No deadline in, no deadline out.
  EXPECT_EQ(got.deadline, std::chrono::steady_clock::time_point::max());
  // In-process-only state never crosses the wire.
  EXPECT_EQ(got.pinned_snapshot, nullptr);
  // Simulator ground truth never crosses the wire: defaults on arrival.
  for (const data::Event& e : got.history) {
    EXPECT_FALSE(e.true_attention);
    EXPECT_EQ(e.true_alpha, 0.0f);
    EXPECT_EQ(e.true_propensity, 0.0f);
    EXPECT_EQ(e.true_relevance, 0);
    EXPECT_EQ(e.relevance_prob, 0.0f);
  }
}

TEST(WireRequest, DeadlineRebasesToRelativeMicros) {
  ScoreRequest req = MakeRequest();
  const auto encode_time = std::chrono::steady_clock::now();
  req.deadline = encode_time + std::chrono::milliseconds(50);
  const std::string frame = EncodeScoreRequest(req);
  const StatusOr<Frame> f = DecodeFrame(frame);
  ASSERT_TRUE(f.ok());
  const StatusOr<ScoreRequest> decoded = DecodeScoreRequest(f.value().payload);
  ASSERT_TRUE(decoded.ok());
  const auto decode_time = std::chrono::steady_clock::now();
  // The decoded deadline is "remaining micros" re-anchored at decode
  // time: no earlier than what was left at encode, no later than the
  // full budget from decode.
  EXPECT_GE(decoded.value().deadline, encode_time);
  EXPECT_LE(decoded.value().deadline,
            decode_time + std::chrono::milliseconds(50));
  // An already-expired deadline stays (effectively) expired.
  req.deadline = encode_time - std::chrono::seconds(1);
  const StatusOr<Frame> f2 = DecodeFrame(EncodeScoreRequest(req));
  ASSERT_TRUE(f2.ok());
  const StatusOr<ScoreRequest> expired =
      DecodeScoreRequest(f2.value().payload);
  ASSERT_TRUE(expired.ok());
  EXPECT_LE(expired.value().deadline,
            std::chrono::steady_clock::now() + std::chrono::milliseconds(1));
}

TEST(WireResponse, RoundTripsScoresBitExactly) {
  const ScoreResponse resp = MakeResponse();
  const std::string frame = EncodeScoreResponse(resp);
  const StatusOr<ScoreResponse> decoded = DecodeReply(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ScoreResponse& got = decoded.value();
  EXPECT_EQ(got.snapshot_version, resp.snapshot_version);
  EXPECT_EQ(got.degraded, resp.degraded);
  EXPECT_EQ(got.degraded_reason, resp.degraded_reason);
  ASSERT_EQ(got.scores.size(), resp.scores.size());
  for (size_t i = 0; i < resp.scores.size(); ++i) {
    EXPECT_EQ(got.scores[i].song, resp.scores[i].song);
    EXPECT_TRUE(BitsEq(got.scores[i].ctr, resp.scores[i].ctr));
    EXPECT_TRUE(BitsEq(got.scores[i].alpha, resp.scores[i].alpha));
    EXPECT_TRUE(BitsEq(got.scores[i].reweighted, resp.scores[i].reweighted));
  }
  EXPECT_EQ(got.playlist, resp.playlist);
}

TEST(WireResponse, NonFiniteScoresSurviveBitExactly) {
  // The codec must not "clean up" pathological values — a NaN produced
  // by a broken model should arrive as that NaN, not as 0.
  ScoreResponse resp;
  resp.snapshot_version = 7;
  CandidateScore cs;
  cs.song = 1;
  const uint64_t nan_bits = 0x7ff8000000000042ULL;  // Payload-carrying NaN.
  std::memcpy(&cs.ctr, &nan_bits, sizeof(cs.ctr));
  cs.alpha = -0.0f;
  cs.reweighted = std::numeric_limits<double>::infinity();
  resp.scores.push_back(cs);
  resp.playlist = {1};
  const StatusOr<ScoreResponse> decoded =
      DecodeReply(EncodeScoreResponse(resp));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(BitsEq(decoded.value().scores[0].ctr, cs.ctr));
  EXPECT_TRUE(BitsEq(decoded.value().scores[0].alpha, cs.alpha));
  EXPECT_TRUE(BitsEq(decoded.value().scores[0].reweighted, cs.reweighted));
}

TEST(WireStatus, RoundTripsEveryErrorCode) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kUnavailable}) {
    const Status original(code, "shard said no");
    const std::string frame = EncodeStatus(original);
    // Client view: the reply decodes to the carried status.
    const StatusOr<ScoreResponse> reply = DecodeReply(frame);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), code);
    EXPECT_EQ(reply.status().message(), "shard said no");
  }
}

TEST(WireStatus, RejectsCarriedOkStatus) {
  // An OK result travels as a kScoreResponse; an OK *status frame* can
  // only mean a confused peer.
  const std::string frame = EncodeStatus(Status::Ok());
  const StatusOr<Frame> decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  Status carried;
  EXPECT_EQ(DecodeStatus(decoded.value().payload, &carried).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireReply, RequestFrameIsNotAValidReply) {
  const std::string frame = EncodeScoreRequest(MakeRequest());
  const StatusOr<ScoreResponse> reply = DecodeReply(frame);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

// ---- Corruption battery ---------------------------------------------

TEST(WireCorruption, EveryTruncationIsRejected) {
  const std::string frame = EncodeScoreRequest(MakeRequest());
  for (size_t len = 0; len < frame.size(); ++len) {
    const StatusOr<Frame> decoded = DecodeFrame(frame.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "truncation at " << len << " accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCorruption, TrailingGarbageIsRejected) {
  const std::string frame = EncodeScoreResponse(MakeResponse());
  for (const char extra : {'\0', 'x'}) {
    const StatusOr<Frame> decoded = DecodeFrame(frame + extra);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCorruption, EverySingleBitFlipIsRejected) {
  // CRC-32 detects all single-bit errors, and the CRC covers the whole
  // frame — so *every* one of the frame's bits is load-bearing. Flip
  // each one and require a clean reject. (The decoded payload of a
  // kStatus frame is not re-CRC'd, but a flipped frame never decodes.)
  const std::string frame = EncodeScoreRequest(MakeRequest());
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      const StatusOr<Frame> decoded = DecodeFrame(corrupt);
      ASSERT_FALSE(decoded.ok())
          << "bit " << bit << " of byte " << byte << " accepted";
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(WireCorruption, SeededMultiBitCorpusIsRejected) {
  // Deterministic multi-bit corruption: random byte splats at random
  // offsets. Multi-bit errors are where CRC-32 is probabilistic, but at
  // frame sizes this small the miss probability (~2^-32 per trial) is
  // negligible across the corpus; a systematic decoder hole shows up
  // immediately.
  const std::string frame = EncodeScoreRequest(MakeRequest());
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupt = frame;
    const int edits = 1 + static_cast<int>(rng.UniformInt(8));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(corrupt.size())));
      const char value = static_cast<char>(rng.UniformInt(256));
      changed = changed || corrupt[pos] != value;
      corrupt[pos] = value;
    }
    if (!changed) continue;
    const StatusOr<Frame> decoded = DecodeFrame(corrupt);
    ASSERT_FALSE(decoded.ok()) << "trial " << trial << " accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCorruption, OversizedLengthRejectedBeforeAllocation) {
  // A frame *claiming* a huge payload must be bounced by the length
  // checks alone — kMaxPayload first, then the actual buffer size —
  // never trusted enough to allocate or read.
  std::string frame = EncodeFrame(FrameType::kScoreRequest, "tiny");
  for (const uint32_t lie :
       {kMaxPayload + 1, 0xffffffffu, static_cast<uint32_t>(1) << 30}) {
    std::string corrupt = frame;
    corrupt[8] = static_cast<char>(lie);
    corrupt[9] = static_cast<char>(lie >> 8);
    corrupt[10] = static_cast<char>(lie >> 16);
    corrupt[11] = static_cast<char>(lie >> 24);
    FixCrc(&corrupt);  // Isolate the length check from the CRC check.
    const StatusOr<Frame> decoded = DecodeFrame(corrupt);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCorruption, CrcMismatchIsRejected) {
  std::string frame = EncodeScoreResponse(MakeResponse());
  frame[frame.size() - 1] = static_cast<char>(frame[frame.size() - 1] ^ 0xff);
  const StatusOr<Frame> decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCorruption, HeaderFieldChecksFireWithValidCrc) {
  const std::string base = EncodeFrame(FrameType::kScoreRequest, "payload");
  // Bad magic.
  {
    std::string corrupt = base;
    corrupt[0] = 'X';
    FixCrc(&corrupt);
    EXPECT_FALSE(DecodeFrame(corrupt).ok());
  }
  // Unsupported protocol version.
  {
    std::string corrupt = base;
    corrupt[4] = static_cast<char>(kProtocolVersion + 1);
    FixCrc(&corrupt);
    EXPECT_FALSE(DecodeFrame(corrupt).ok());
  }
  // Unknown frame type.
  {
    std::string corrupt = base;
    corrupt[5] = 99;
    FixCrc(&corrupt);
    EXPECT_FALSE(DecodeFrame(corrupt).ok());
  }
  // Reserved bits set.
  {
    std::string corrupt = base;
    corrupt[6] = 1;
    FixCrc(&corrupt);
    EXPECT_FALSE(DecodeFrame(corrupt).ok());
  }
}

TEST(WireCorruption, HostileArrayCountsRejectedWithoutAllocation) {
  // A payload whose array count claims 2^32-1 events must fail on the
  // "count * min-size > remaining bytes" bound, not attempt a reserve.
  std::string payload;
  const auto put_u32 = [&payload](uint32_t v) {
    payload.push_back(static_cast<char>(v));
    payload.push_back(static_cast<char>(v >> 8));
    payload.push_back(static_cast<char>(v >> 16));
    payload.push_back(static_cast<char>(v >> 24));
  };
  put_u32(42);                   // user
  payload.push_back(0);          // has_deadline
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // deadline micros
  put_u32(0xffffffffu);          // history count: hostile
  const StatusOr<ScoreRequest> decoded = DecodeScoreRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCorruption, PayloadTruncationsAndFuzzRejectedCleanly) {
  // Type-specific decoders under the same discipline: every truncation
  // of a valid payload fails (the strict AtEnd check means no proper
  // prefix can parse), and seeded random payloads never crash.
  const StatusOr<Frame> req_frame =
      DecodeFrame(EncodeScoreRequest(MakeRequest()));
  ASSERT_TRUE(req_frame.ok());
  const std::string& req_payload = req_frame.value().payload;
  for (size_t len = 0; len < req_payload.size(); ++len) {
    EXPECT_FALSE(DecodeScoreRequest(req_payload.substr(0, len)).ok())
        << "request payload truncation at " << len;
  }
  const StatusOr<Frame> resp_frame =
      DecodeFrame(EncodeScoreResponse(MakeResponse()));
  ASSERT_TRUE(resp_frame.ok());
  const std::string& resp_payload = resp_frame.value().payload;
  for (size_t len = 0; len < resp_payload.size(); ++len) {
    EXPECT_FALSE(DecodeScoreResponse(resp_payload.substr(0, len)).ok())
        << "response payload truncation at " << len;
  }
  Rng rng(0xfeedface);
  for (int trial = 0; trial < 500; ++trial) {
    std::string junk(rng.UniformInt(256), '\0');
    for (char& c : junk) c = static_cast<char>(rng.UniformInt(256));
    // Must not crash; accept-or-reject is the decoder's call, but any
    // accepted request must carry in-range enum values.
    const StatusOr<ScoreRequest> maybe_req = DecodeScoreRequest(junk);
    if (maybe_req.ok()) {
      for (const data::Event& e : maybe_req.value().history) {
        EXPECT_LE(static_cast<int>(e.action),
                  static_cast<int>(data::FeedbackAction::kDownload));
      }
    }
    (void)DecodeScoreResponse(junk);
    Status carried;
    (void)DecodeStatus(junk, &carried);
    (void)DecodeFrame(junk);
  }
}

}  // namespace
}  // namespace uae::serve::wire
