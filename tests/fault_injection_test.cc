#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "attention/sar.h"
#include "attention/uae_model.h"
#include "common/check.h"
#include "common/fault.h"
#include "data/generator.h"
#include "data/io.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace uae {
namespace {

/// Chaos suite: arm the production fault points at small probabilities and
/// assert the recovery machinery — lenient import, atomic checkpoints, the
/// non-finite-step watchdog, durable resume — keeps results healthy.
/// Every test disarms in teardown so faults never leak across tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

data::Dataset TinyDataset(uint64_t seed = 23) {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 250;
  cfg.num_users = 60;
  cfg.num_songs = 150;
  cfg.num_artists = 25;
  cfg.num_albums = 40;
  cfg.affinity_noise = 0.1;
  return data::GenerateDataset(cfg, seed);
}

models::ModelConfig SmallConfig() {
  models::ModelConfig cfg;
  cfg.embed_dim = 4;
  cfg.mlp_dims = {16};
  cfg.cross_layers = 2;
  return cfg;
}

models::TrainConfig FastTrain(uint64_t seed = 1) {
  models::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 128;
  cfg.learning_rate = 3e-3f;
  cfg.seed = seed;
  return cfg;
}

// --------------------------------------------------------- FaultInjector

TEST_F(FaultInjectionTest, FiringSequenceIsDeterministicPerSeed) {
  auto draw = [](uint64_t seed) {
    FaultInjector::Instance().Arm("test.point", {0.5, seed});
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(FaultInjector::Instance().ShouldFire("test.point"));
    }
    FaultInjector::Instance().DisarmAll();
    return fires;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST_F(FaultInjectionTest, DisarmedPointsNeverFireAndCountNothing) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(UAE_FAULT_POINT("never.armed"));
  }
  EXPECT_EQ(FaultInjector::Instance().Stats("never.armed").trials, 0);
  EXPECT_FALSE(FaultInjector::Enabled());
}

TEST_F(FaultInjectionTest, StatsCountTrialsAndFires) {
  FaultInjector::Instance().Arm("test.stats", {1.0, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(UAE_FAULT_POINT("test.stats"));
  }
  const FaultInjector::FaultStats stats =
      FaultInjector::Instance().Stats("test.stats");
  EXPECT_EQ(stats.trials, 10);
  EXPECT_EQ(stats.fires, 10);
  EXPECT_EQ(FaultInjector::Instance().ArmedPoints(),
            std::vector<std::string>{"test.stats"});
}

// -------------------------------------------------- chaos: dataset import

TEST_F(FaultInjectionTest, LenientImportSurvivesTornReads) {
  const data::Dataset original = TinyDataset();
  const std::string path = testing::TempDir() + "/uae_chaos_io.txt";
  ASSERT_TRUE(data::WriteDatasetText(original, path).ok());

  FaultInjector::Instance().Arm("io.read", {0.02, 41});
  data::IoReadReport report;
  const StatusOr<data::Dataset> loaded = data::ReadDatasetText(
      path, data::IoOptions{.max_bad_lines = 1 << 20}, &report);
  const FaultInjector::FaultStats stats =
      FaultInjector::Instance().Stats("io.read");
  FaultInjector::Instance().DisarmAll();

  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(stats.fires, 0);
  EXPECT_GE(report.bad_lines, 1);
  EXPECT_LE(report.bad_lines, stats.fires);
  // The import loses only the torn lines, never whole structure.
  EXPECT_GE(loaded.value().TotalEvents(),
            original.TotalEvents() - static_cast<size_t>(stats.fires));
}

// ----------------------------------------------- chaos: downstream model

TEST_F(FaultInjectionTest, TrainingRecoversFromNanGradients) {
  const data::Dataset d = TinyDataset();

  auto run = [&](bool faulty) {
    if (faulty) {
      FaultInjector::Instance().Arm("grad.nan", {0.02, 17});
    }
    Rng rng(2);
    auto model = models::CreateRecommender(models::ModelKind::kWideDeep,
                                           &rng, d.schema, SmallConfig());
    models::TrainConfig cfg = FastTrain(2);
    cfg.max_bad_steps = 64;  // Plenty for p=0.02 over a short run.
    const models::TrainResult result =
        models::TrainRecommender(model.get(), d, nullptr, cfg);
    FaultInjector::Instance().DisarmAll();
    return result;
  };

  const models::TrainResult clean = run(false);
  const models::TrainResult chaos = run(true);

  EXPECT_EQ(clean.recovered_steps, 0);
  EXPECT_GE(chaos.recovered_steps, 1);
  EXPECT_FALSE(chaos.diverged);
  EXPECT_TRUE(std::isfinite(chaos.best_valid_auc));
  EXPECT_GT(chaos.best_valid_auc, 0.5);
  // Skipping the poisoned steps keeps quality at the fault-free level.
  EXPECT_NEAR(chaos.best_valid_auc, clean.best_valid_auc, 0.02);
}

TEST_F(FaultInjectionTest, TrainingSurvivesTornCheckpointWrites) {
  const data::Dataset d = TinyDataset();
  const std::string path = testing::TempDir() + "/uae_chaos_ckpt.bin";
  std::remove(path.c_str());

  // Every single checkpoint write is torn — training must shrug them all
  // off (a failed save is a warning, never an abort).
  FaultInjector::Instance().Arm("ckpt.write", {1.0, 5});
  Rng rng(2);
  auto model = models::CreateRecommender(models::ModelKind::kFm, &rng,
                                         d.schema, SmallConfig());
  models::TrainConfig cfg = FastTrain(2);
  cfg.epochs = 2;
  cfg.checkpoint_path = path;
  const models::TrainResult result =
      models::TrainRecommender(model.get(), d, nullptr, cfg);
  FaultInjector::Instance().DisarmAll();

  EXPECT_GT(result.best_valid_auc, 0.5);
  EXPECT_EQ(result.train_loss_per_epoch.size(), 2u);
  // No durable checkpoint was ever completed — and no torn file leaked.
  std::ifstream leftover(path);
  EXPECT_FALSE(leftover.is_open());
}

TEST_F(FaultInjectionTest, AllFaultsAtOnceStillTrainsWithinTolerance) {
  // The acceptance scenario: io.read + ckpt.write + grad.nan all armed at
  // p = 0.02 across the full pipeline — lenient import, checkpointed
  // training — and quality stays within 0.02 AUC of the fault-free run.
  const data::Dataset original = TinyDataset();
  const std::string text_path = testing::TempDir() + "/uae_chaos_all.txt";
  ASSERT_TRUE(data::WriteDatasetText(original, text_path).ok());

  auto run = [&](bool faulty) {
    if (faulty) {
      FaultInjector::Instance().Arm("io.read", {0.02, 101});
      FaultInjector::Instance().Arm("ckpt.write", {0.02, 102});
      FaultInjector::Instance().Arm("grad.nan", {0.02, 103});
    }
    const StatusOr<data::Dataset> loaded = data::ReadDatasetText(
        text_path, data::IoOptions{.max_bad_lines = 1 << 20}, nullptr);
    UAE_CHECK_OK(loaded.status());
    Rng rng(2);
    auto model = models::CreateRecommender(models::ModelKind::kWideDeep,
                                           &rng, loaded.value().schema,
                                           SmallConfig());
    models::TrainConfig cfg = FastTrain(2);
    cfg.max_bad_steps = 64;
    cfg.checkpoint_path =
        testing::TempDir() +
        (faulty ? "/uae_chaos_all_f.bin" : "/uae_chaos_all_c.bin");
    const models::TrainResult result =
        models::TrainRecommender(model.get(), loaded.value(), nullptr, cfg);
    FaultInjector::Instance().DisarmAll();
    return result;
  };

  const models::TrainResult clean = run(false);
  const models::TrainResult chaos = run(true);
  EXPECT_FALSE(chaos.diverged);
  EXPECT_TRUE(std::isfinite(chaos.best_valid_auc));
  EXPECT_NEAR(chaos.best_valid_auc, clean.best_valid_auc, 0.02);
}

// ------------------------------------------------------- durable resume

TEST_F(FaultInjectionTest, KillResumeMatchesUninterruptedRun) {
  const data::Dataset d = TinyDataset();
  const std::string path = testing::TempDir() + "/uae_resume.bin";

  auto make_model = [&] {
    Rng rng(6);
    return models::CreateRecommender(models::ModelKind::kFm, &rng, d.schema,
                                     SmallConfig());
  };
  models::TrainConfig cfg = FastTrain(6);
  cfg.checkpoint_path = path;

  // Reference: uninterrupted 6-epoch run.
  auto uninterrupted = make_model();
  const models::TrainResult full =
      models::TrainRecommender(uninterrupted.get(), d, nullptr, cfg);

  // "Kill" after 3 epochs: run a truncated horizon, leaving a durable
  // checkpoint behind, then resume a FRESH model to the full horizon.
  auto interrupted = make_model();
  models::TrainConfig half = cfg;
  half.epochs = 3;
  models::TrainRecommender(interrupted.get(), d, nullptr, half);

  auto resumed = make_model();
  models::TrainResult continued;
  const Status status =
      models::ResumeTrainRecommender(resumed.get(), d, nullptr, cfg,
                                     &continued);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Same best-epoch selection, bit-for-bit.
  EXPECT_EQ(continued.start_epoch, 3);
  EXPECT_EQ(continued.best_epoch, full.best_epoch);
  EXPECT_EQ(continued.best_valid_auc, full.best_valid_auc);
  ASSERT_EQ(continued.valid_auc_per_epoch.size(),
            full.valid_auc_per_epoch.size());
  for (size_t e = 0; e < full.valid_auc_per_epoch.size(); ++e) {
    EXPECT_EQ(continued.valid_auc_per_epoch[e], full.valid_auc_per_epoch[e]);
  }
  const models::EvalResult a =
      models::EvaluateRecommender(uninterrupted.get(), d,
                                  data::SplitKind::kTest);
  const models::EvalResult b =
      models::EvaluateRecommender(resumed.get(), d, data::SplitKind::kTest);
  EXPECT_EQ(a.auc, b.auc);
}

TEST_F(FaultInjectionTest, ResumeRejectsMissingAndMismatchedCheckpoints) {
  const data::Dataset d = TinyDataset();
  Rng rng(6);
  auto model = models::CreateRecommender(models::ModelKind::kFm, &rng,
                                         d.schema, SmallConfig());
  models::TrainResult result;

  models::TrainConfig cfg = FastTrain(6);
  cfg.checkpoint_path = testing::TempDir() + "/uae_resume_missing.bin";
  std::remove(cfg.checkpoint_path.c_str());
  EXPECT_EQ(models::ResumeTrainRecommender(model.get(), d, nullptr, cfg,
                                           &result)
                .code(),
            StatusCode::kIoError);

  // A checkpoint from a different architecture must be rejected cleanly.
  models::TrainConfig other = cfg;
  other.checkpoint_path = testing::TempDir() + "/uae_resume_other.bin";
  other.epochs = 1;
  Rng rng2(6);
  models::ModelConfig big = SmallConfig();
  big.embed_dim = 8;
  auto other_model = models::CreateRecommender(models::ModelKind::kFm, &rng2,
                                               d.schema, big);
  models::TrainRecommender(other_model.get(), d, nullptr, other);
  cfg.checkpoint_path = other.checkpoint_path;
  EXPECT_EQ(models::ResumeTrainRecommender(model.get(), d, nullptr, cfg,
                                           &result)
                .code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------- UAE estimator

/// Pearson correlation of predicted attention with the true alpha.
double AlphaCorrelation(const data::Dataset& d,
                        const data::EventScores& pred) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  int64_t n = 0;
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      const double x = pred.at(static_cast<int>(s), t);
      const double y = d.sessions[s].events[t].true_alpha;
      sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
      ++n;
    }
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  return cov / std::sqrt(vx * vy + 1e-12);
}

TEST_F(FaultInjectionTest, UaeFitSurvivesChaos) {
  const data::Dataset d = TinyDataset(11);

  auto fit_correlation = [&](bool faulty) {
    if (faulty) {
      FaultInjector::Instance().Arm("grad.nan", {0.02, 301});
      FaultInjector::Instance().Arm("ckpt.write", {0.02, 302});
    }
    attention::UaeConfig cfg;
    cfg.epochs = 3;
    cfg.seed = 9;
    cfg.max_bad_steps = 64;
    if (faulty) {
      cfg.checkpoint_path = testing::TempDir() + "/uae_chaos_uae.bin";
    }
    attention::Uae uae(cfg);
    uae.Fit(d);
    FaultInjector::Instance().DisarmAll();
    EXPECT_FALSE(uae.diverged());
    if (faulty) EXPECT_GE(uae.recovered_steps(), 1);
    return AlphaCorrelation(d, uae.PredictAttention(d));
  };

  const double clean = fit_correlation(false);
  const double chaos = fit_correlation(true);
  EXPECT_GT(clean, 0.3);
  EXPECT_TRUE(std::isfinite(chaos));
  EXPECT_NEAR(chaos, clean, 0.05);
}

TEST_F(FaultInjectionTest, UaeKillResumeMatchesUninterruptedFit) {
  const data::Dataset d = TinyDataset(11);
  const std::string path = testing::TempDir() + "/uae_uae_resume.bin";

  attention::UaeConfig cfg;
  cfg.epochs = 3;
  cfg.seed = 9;
  cfg.checkpoint_path = path;

  attention::Uae full(cfg);
  full.Fit(d);

  attention::UaeConfig half = cfg;
  half.epochs = 2;
  attention::Uae interrupted(half);
  interrupted.Fit(d);

  attention::Uae resumed(cfg);
  const Status status = resumed.Resume(d, path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  ASSERT_EQ(resumed.attention_risk_history().size(),
            full.attention_risk_history().size());
  for (size_t i = 0; i < full.attention_risk_history().size(); ++i) {
    EXPECT_EQ(resumed.attention_risk_history()[i],
              full.attention_risk_history()[i]);
  }
  const data::EventScores a = full.PredictAttention(d);
  const data::EventScores b = resumed.PredictAttention(d);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      ASSERT_EQ(a.at(static_cast<int>(s), t), b.at(static_cast<int>(s), t));
    }
  }
}

TEST_F(FaultInjectionTest, SarWatchdogRecoversFromNanGradients) {
  const data::Dataset d = TinyDataset();
  // SAR runs few (large-batch) steps, so fire more often than the p=0.02
  // acceptance scenario to guarantee watchdog coverage.
  FaultInjector::Instance().Arm("grad.nan", {0.1, 7});
  attention::SarConfig cfg;
  cfg.epochs = 2;
  cfg.seed = 3;
  cfg.max_bad_steps = 64;
  attention::Sar sar(cfg);
  sar.Fit(d);
  FaultInjector::Instance().DisarmAll();
  EXPECT_GE(sar.recovered_steps(), 1);
  const data::EventScores alpha = sar.PredictAttention(d);
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      EXPECT_TRUE(std::isfinite(alpha.at(static_cast<int>(s), t)));
    }
  }
}

}  // namespace
}  // namespace uae
