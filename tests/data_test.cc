#include <gtest/gtest.h>

#include <set>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/schema.h"

namespace uae::data {
namespace {

TEST(SchemaTest, FieldAccessAndLookup) {
  FeatureSchema schema({{"user", 10}, {"song", 20}}, {"aff", "rank"});
  EXPECT_EQ(schema.num_sparse(), 2);
  EXPECT_EQ(schema.num_dense(), 2);
  EXPECT_EQ(schema.num_features(), 4);
  EXPECT_EQ(schema.sparse_field(1).name, "song");
  EXPECT_EQ(schema.SparseFieldIndex("song"), 1);
  EXPECT_EQ(schema.SparseFieldIndex("absent"), -1);
  EXPECT_EQ(schema.DenseFieldIndex("rank"), 1);
  EXPECT_EQ(schema.TotalVocab(), 30);
}

TEST(EventTest, FeedbackSemanticsMatchTableI) {
  EXPECT_FALSE(IsActive(FeedbackAction::kAutoPlay));
  for (FeedbackAction a :
       {FeedbackAction::kSkip, FeedbackAction::kDislike, FeedbackAction::kLike,
        FeedbackAction::kShare, FeedbackAction::kDownload}) {
    EXPECT_TRUE(IsActive(a));
  }
  EXPECT_EQ(FeedbackLabel(FeedbackAction::kSkip), 0);
  EXPECT_EQ(FeedbackLabel(FeedbackAction::kDislike), 0);
  EXPECT_EQ(FeedbackLabel(FeedbackAction::kLike), 1);
  EXPECT_EQ(FeedbackLabel(FeedbackAction::kShare), 1);
  EXPECT_EQ(FeedbackLabel(FeedbackAction::kDownload), 1);
  // The unreliable passive positive of the paper.
  EXPECT_EQ(FeedbackLabel(FeedbackAction::kAutoPlay), 1);
}

TEST(SplitTest, ChronologicalRatios) {
  const DatasetSplit split = MakeChronologicalSplit(100, 0.8, 0.1);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.valid.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
  // Chronological: train ids < valid ids < test ids.
  EXPECT_EQ(split.train.back(), 79);
  EXPECT_EQ(split.valid.front(), 80);
  EXPECT_EQ(split.test.back(), 99);
}

TEST(SplitTest, OfSelector) {
  const DatasetSplit split = MakeChronologicalSplit(10, 0.6, 0.2);
  EXPECT_EQ(&split.Of(SplitKind::kTrain), &split.train);
  EXPECT_EQ(&split.Of(SplitKind::kValid), &split.valid);
  EXPECT_EQ(&split.Of(SplitKind::kTest), &split.test);
}

Dataset SmallDataset() {
  GeneratorConfig cfg = GeneratorConfig::ProductPreset();
  cfg.num_sessions = 60;
  cfg.num_users = 20;
  cfg.num_songs = 50;
  cfg.num_artists = 10;
  cfg.num_albums = 15;
  return GenerateDataset(cfg, 5);
}

TEST(DatasetTest, EventRefsCoverSplit) {
  const Dataset d = SmallDataset();
  const auto refs = CollectEventRefs(d, SplitKind::kTrain);
  size_t expected = 0;
  for (int s : d.split.train) expected += d.sessions[s].events.size();
  EXPECT_EQ(refs.size(), expected);
}

TEST(DatasetTest, EventScoresAligned) {
  const Dataset d = SmallDataset();
  EventScores scores(d, 0.25f);
  EXPECT_EQ(scores.num_sessions(), static_cast<int>(d.sessions.size()));
  EXPECT_EQ(scores.session_length(0), d.sessions[0].length());
  EXPECT_EQ(scores.at(0, 0), 0.25f);
  scores.set(0, 1, 0.75f);
  EXPECT_EQ(scores.at(EventRef{0, 1}), 0.75f);
}

TEST(FlatBatcherTest, CoversEveryEventExactlyOnce) {
  const Dataset d = SmallDataset();
  auto refs = CollectEventRefs(d, SplitKind::kTrain);
  const size_t total = refs.size();
  FlatBatcher batcher(std::move(refs), 17);
  Rng rng(1);
  batcher.StartEpoch(&rng);
  std::set<std::pair<int, int>> seen;
  std::vector<EventRef> batch;
  while (batcher.Next(&batch)) {
    EXPECT_LE(batch.size(), 17u);
    for (const EventRef& ref : batch) {
      EXPECT_TRUE(seen.insert({ref.session, ref.step}).second);
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(FlatBatcherTest, ReshufflesBetweenEpochs) {
  const Dataset d = SmallDataset();
  FlatBatcher batcher(CollectEventRefs(d, SplitKind::kTrain), 1024);
  Rng rng(2);
  batcher.StartEpoch(&rng);
  std::vector<EventRef> first;
  batcher.Next(&first);
  batcher.StartEpoch(&rng);
  std::vector<EventRef> second;
  batcher.Next(&second);
  ASSERT_EQ(first.size(), second.size());
  bool differs = false;
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].session != second[i].session ||
        first[i].step != second[i].step) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SessionBatcherTest, BatchesAreEqualLength) {
  const Dataset d = SmallDataset();
  SessionBatcher batcher(d, d.split.train, 8);
  Rng rng(3);
  batcher.StartEpoch(&rng);
  std::set<int> seen;
  std::vector<int> batch;
  while (batcher.Next(&batch)) {
    ASSERT_FALSE(batch.empty());
    EXPECT_LE(batch.size(), 8u);
    const int len = d.sessions[batch[0]].length();
    for (int s : batch) {
      EXPECT_EQ(d.sessions[s].length(), len);
      EXPECT_TRUE(seen.insert(s).second);
    }
  }
  EXPECT_EQ(seen.size(), d.split.train.size());
}

}  // namespace
}  // namespace uae::data
