#include "common/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"

namespace uae {
namespace {

// ---------------------------------------------------------- Bounds

TEST(SketchBoundsTest, UniformBoundsShape) {
  const std::vector<double> bounds = UniformBounds(0.0, 1.0, 4);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.25);
  EXPECT_DOUBLE_EQ(bounds[1], 0.5);
  EXPECT_DOUBLE_EQ(bounds[2], 0.75);
}

TEST(SketchBoundsTest, UnitIntervalDefault) {
  const std::vector<double> bounds = UnitIntervalBounds();
  EXPECT_EQ(bounds.size(), 31u);  // 32 buckets with the overflow bucket.
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

// --------------------------------------------- DistributionSketch

TEST(DistributionSketchTest, MomentsAreExact) {
  DistributionSketch sketch;
  sketch.Add(0.1);
  sketch.Add(0.2);
  sketch.Add(0.3);
  EXPECT_EQ(sketch.count(), 3);
  EXPECT_NEAR(sketch.Mean(), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.1);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.3);
  const SampleSummary summary = sketch.Summary();
  EXPECT_EQ(summary.n, 3);
  EXPECT_NEAR(summary.mean, 0.2, 1e-12);
  EXPECT_NEAR(summary.stddev, 0.1, 1e-9);
}

TEST(DistributionSketchTest, QuantileTracksExactSort) {
  Rng rng(1234);
  DistributionSketch sketch;
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    // Mixture: a broad base plus a narrow mode, all inside [0, 1].
    const double value = rng.Bernoulli(0.3)
                             ? 0.7 + 0.05 * rng.Uniform()
                             : rng.Uniform();
    values.push_back(value);
    sketch.Add(value);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    // A 32-bucket CDF walk is accurate to about a bucket width.
    EXPECT_NEAR(sketch.Quantile(q), exact, 1.0 / 31.0)
        << "q=" << q;
  }
  EXPECT_GE(sketch.Quantile(0.0), sketch.min());
  EXPECT_LE(sketch.Quantile(1.0), sketch.max());
}

TEST(DistributionSketchTest, MergeMatchesSingleStream) {
  Rng rng(7);
  DistributionSketch all;
  DistributionSketch left;
  DistributionSketch right;
  for (int i = 0; i < 500; ++i) {
    const double value = rng.Uniform();
    all.Add(value);
    (i < 250 ? left : right).Add(value);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(left.buckets(), all.buckets());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  // Sums differ only by FP association order; Serialize golden below
  // pins the case that must be *bit* identical (shard-order merges).
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
}

TEST(DistributionSketchTest, SerializeGoldenAcrossThreadCounts) {
  // The determinism contract (DESIGN.md §14): per-shard sketches merged
  // in shard-index order are bit-identical at any UAE_NUM_THREADS. Run
  // the same ParallelReduce at 1/2/8 threads and byte-compare.
  const int64_t n = 10000;
  const auto sketch_of = [&]() {
    return parallel::ParallelReduce<DistributionSketch>(
        0, n, /*grain=*/256, DistributionSketch(),
        [](int64_t begin, int64_t end) {
          DistributionSketch shard;
          for (int64_t i = begin; i < end; ++i) {
            Rng rng(static_cast<uint64_t>(i) + 1);
            shard.Add(rng.Uniform());
          }
          return shard;
        },
        [](DistributionSketch acc, DistributionSketch next) {
          acc.Merge(next);
          return acc;
        });
  };
  const int saved_threads = parallel::NumThreads();
  parallel::SetNumThreads(1);
  const std::string golden = sketch_of().Serialize();
  parallel::SetNumThreads(2);
  const std::string two = sketch_of().Serialize();
  parallel::SetNumThreads(8);
  const std::string eight = sketch_of().Serialize();
  parallel::SetNumThreads(saved_threads);
  EXPECT_EQ(golden, two);
  EXPECT_EQ(golden, eight);
  EXPECT_NE(golden.find("UAESKETCH1"), std::string::npos);
}

TEST(DistributionSketchTest, ResetKeepsBounds) {
  DistributionSketch sketch(UniformBounds(0.0, 10.0, 8));
  sketch.Add(3.0);
  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.bounds().size(), 7u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);  // Empty.
}

// ----------------------------------------------------- PSI + verdict

TEST(PsiTest, IdenticalDistributionsScoreNearZero) {
  Rng rng(42);
  DistributionSketch a;
  DistributionSketch b;
  for (int i = 0; i < 2000; ++i) {
    a.Add(rng.Uniform());
    b.Add(rng.Uniform());
  }
  EXPECT_LT(Psi(a, b), 0.05);
}

TEST(PsiTest, ShiftedDistributionScoresHigh) {
  Rng rng(42);
  DistributionSketch a;
  DistributionSketch b;
  for (int i = 0; i < 2000; ++i) {
    a.Add(0.3 * rng.Uniform());        // Mass in [0, 0.3).
    b.Add(0.7 + 0.3 * rng.Uniform());  // Mass in [0.7, 1.0).
  }
  EXPECT_GT(Psi(a, b), 1.0);
}

TEST(PsiTest, EmptySketchIsZero) {
  DistributionSketch a;
  DistributionSketch b;
  b.Add(0.5);
  EXPECT_DOUBLE_EQ(Psi(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Psi(b, a), 0.0);
}

TEST(CompareSketchesTest, InsufficientEvidenceDoesNotFlag) {
  DistributionSketch reference;
  DistributionSketch current;
  for (int i = 0; i < 10; ++i) {
    reference.Add(0.1);
    current.Add(0.9);  // Wildly different, but only 10 samples.
  }
  const SketchComparison verdict =
      CompareSketches(reference, current, 0.2, 0.01, /*min_samples=*/32);
  EXPECT_FALSE(verdict.evaluated);
  EXPECT_FALSE(verdict.flagged);
}

TEST(CompareSketchesTest, FlagsRealShift) {
  Rng rng(5);
  DistributionSketch reference;
  DistributionSketch current;
  for (int i = 0; i < 500; ++i) {
    reference.Add(0.2 + 0.1 * rng.Uniform());
    current.Add(0.6 + 0.1 * rng.Uniform());
  }
  const SketchComparison verdict =
      CompareSketches(reference, current, 0.2, 0.01, 32);
  EXPECT_TRUE(verdict.evaluated);
  EXPECT_TRUE(verdict.flagged);
  EXPECT_GE(verdict.psi, 0.2);
  EXPECT_LE(verdict.p_value, 0.01);
  EXPECT_NEAR(verdict.mean_delta, 0.4, 0.02);
  EXPECT_EQ(verdict.ref_n, 500);
  EXPECT_EQ(verdict.cur_n, 500);
}

TEST(CompareSketchesTest, SameDistributionStaysQuiet) {
  Rng rng(5);
  DistributionSketch reference;
  DistributionSketch current;
  for (int i = 0; i < 500; ++i) {
    reference.Add(rng.Uniform());
    current.Add(rng.Uniform());
  }
  const SketchComparison verdict =
      CompareSketches(reference, current, 0.2, 0.01, 32);
  EXPECT_TRUE(verdict.evaluated);
  EXPECT_FALSE(verdict.flagged);
}

TEST(CompareSketchesTest, ConstantSignalStaysQuiet) {
  // Zero-variance windows (e.g. skip == 1.0 under full shedding, or a
  // tower-less snapshot's constant alpha-hat) must not flag: equal
  // means degenerate to Welch p = 1.
  DistributionSketch reference;
  DistributionSketch current;
  for (int i = 0; i < 100; ++i) {
    reference.Add(1.0);
    current.Add(1.0);
  }
  const SketchComparison verdict =
      CompareSketches(reference, current, 0.2, 0.01, 32);
  EXPECT_TRUE(verdict.evaluated);
  EXPECT_FALSE(verdict.flagged);
}

// ------------------------------------------------------- P2Quantile

TEST(P2QuantileTest, ExactBelowFiveSamples) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.Value(), 0.0);
  median.Add(3.0);
  EXPECT_DOUBLE_EQ(median.Value(), 3.0);
  median.Add(1.0);
  median.Add(2.0);
  EXPECT_DOUBLE_EQ(median.Value(), 2.0);
}

TEST(P2QuantileTest, TracksUniformQuantiles) {
  Rng rng(99);
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  for (int i = 0; i < 20000; ++i) {
    const double value = rng.Uniform();
    p50.Add(value);
    p95.Add(value);
  }
  EXPECT_NEAR(p50.Value(), 0.5, 0.02);
  EXPECT_NEAR(p95.Value(), 0.95, 0.02);
  EXPECT_EQ(p50.count(), 20000);
  EXPECT_DOUBLE_EQ(p95.quantile(), 0.95);
}

TEST(P2QuantileTest, TracksNormalMedian) {
  Rng rng(7);
  P2Quantile median(0.5);
  for (int i = 0; i < 20000; ++i) median.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(median.Value(), 10.0, 0.1);
}

}  // namespace
}  // namespace uae
