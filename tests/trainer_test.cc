#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace uae::models {
namespace {

data::Dataset TinyDataset() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 250;
  cfg.num_users = 60;
  cfg.num_songs = 150;
  cfg.num_artists = 25;
  cfg.num_albums = 40;
  cfg.affinity_noise = 0.1;  // Keep the tiny-data task easily learnable.
  return data::GenerateDataset(cfg, 23);
}

ModelConfig SmallConfig() {
  ModelConfig cfg;
  cfg.embed_dim = 4;
  cfg.mlp_dims = {16};
  cfg.cross_layers = 2;
  return cfg;
}

TrainConfig FastTrain(uint64_t seed = 1) {
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 128;
  cfg.learning_rate = 3e-3f;
  cfg.seed = seed;
  return cfg;
}

TEST(ScoreEventsTest, ReturnsProbabilityPerEvent) {
  const data::Dataset d = TinyDataset();
  Rng rng(1);
  auto model =
      CreateRecommender(ModelKind::kFm, &rng, d.schema, SmallConfig());
  const auto refs = data::CollectEventRefs(d, data::SplitKind::kTest);
  const auto scores = ScoreEvents(model.get(), d, refs, /*batch_size=*/100);
  ASSERT_EQ(scores.size(), refs.size());
  for (double s : scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(TrainerTest, TrainingBeatsUntrainedModel) {
  const data::Dataset d = TinyDataset();
  Rng rng(2);
  auto model =
      CreateRecommender(ModelKind::kWideDeep, &rng, d.schema, SmallConfig());
  const EvalResult before =
      EvaluateRecommender(model.get(), d, data::SplitKind::kTest);
  const TrainResult result =
      TrainRecommender(model.get(), d, nullptr, FastTrain());
  const EvalResult after =
      EvaluateRecommender(model.get(), d, data::SplitKind::kTest);
  EXPECT_GT(after.auc, before.auc + 0.02);
  EXPECT_GT(result.best_valid_auc, 0.5);
  EXPECT_EQ(result.train_auc_per_epoch.size(), 6u);
  EXPECT_EQ(result.valid_auc_per_epoch.size(), 6u);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  const data::Dataset d = TinyDataset();
  Rng rng(3);
  auto model =
      CreateRecommender(ModelKind::kDeepFm, &rng, d.schema, SmallConfig());
  const TrainResult result =
      TrainRecommender(model.get(), d, nullptr, FastTrain());
  EXPECT_LT(result.train_loss_per_epoch.back(),
            result.train_loss_per_epoch.front());
}

TEST(TrainerTest, DeterministicForSeed) {
  const data::Dataset d = TinyDataset();
  auto run = [&](uint64_t seed) {
    Rng rng(seed);
    auto model =
        CreateRecommender(ModelKind::kFm, &rng, d.schema, SmallConfig());
    TrainRecommender(model.get(), d, nullptr, FastTrain(seed));
    return EvaluateRecommender(model.get(), d, data::SplitKind::kTest).auc;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(TrainerTest, ZeroPassiveWeightsTrainOnActiveOnly) {
  // With all passive weights 0 the loss only sees ~14% of the events;
  // training must still run and produce a finite model.
  const data::Dataset d = TinyDataset();
  data::EventScores weights(d, 0.0f);
  Rng rng(4);
  auto model =
      CreateRecommender(ModelKind::kWideDeep, &rng, d.schema, SmallConfig());
  const TrainResult result =
      TrainRecommender(model.get(), d, &weights, FastTrain());
  EXPECT_GT(result.best_valid_auc, 0.0);
  for (double loss : result.train_loss_per_epoch) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(TrainerTest, ObservedVsOracleLabelsDiffer) {
  const data::Dataset d = TinyDataset();
  Rng rng(5);
  auto model =
      CreateRecommender(ModelKind::kWideDeep, &rng, d.schema, SmallConfig());
  TrainRecommender(model.get(), d, nullptr, FastTrain());
  const EvalResult observed = EvaluateRecommender(
      model.get(), d, data::SplitKind::kTest, LabelKind::kObserved);
  const EvalResult oracle = EvaluateRecommender(
      model.get(), d, data::SplitKind::kTest, LabelKind::kOracleRelevance);
  EXPECT_NE(observed.auc, oracle.auc);
}

TEST(TrainerTest, RestoreBestKeepsBestValidationEpoch) {
  const data::Dataset d = TinyDataset();
  Rng rng(6);
  auto model =
      CreateRecommender(ModelKind::kFm, &rng, d.schema, SmallConfig());
  TrainConfig cfg = FastTrain();
  cfg.epochs = 5;
  cfg.restore_best = true;
  const TrainResult result = TrainRecommender(model.get(), d, nullptr, cfg);
  // The restored model's validation AUC equals the recorded best.
  const EvalResult valid =
      EvaluateRecommender(model.get(), d, data::SplitKind::kValid);
  EXPECT_NEAR(valid.auc, result.best_valid_auc, 1e-9);
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_LT(result.best_epoch, 5);
}

}  // namespace
}  // namespace uae::models
