#include <gtest/gtest.h>

#include "data/feedback_stats.h"

namespace uae::data {
namespace {

/// Hand-built dataset with a known feedback pattern.
Dataset HandDataset(const std::vector<std::vector<int>>& activity) {
  Dataset d;
  d.name = "hand";
  d.schema = FeatureSchema({{"user_id", 4}, {"song_id", 4}}, {"affinity"});
  for (size_t s = 0; s < activity.size(); ++s) {
    Session session;
    session.user = static_cast<int>(s);
    for (int e : activity[s]) {
      Event event;
      event.sparse = {static_cast<int>(s), 0};
      event.dense = {0.5f};
      event.action = e ? FeedbackAction::kLike : FeedbackAction::kAutoPlay;
      session.events.push_back(event);
    }
    d.sessions.push_back(std::move(session));
  }
  // No split needed: feedback statistics read the raw sessions.
  return d;
}

TEST(FeedbackStatsTest, TransitionMatrixHandValues) {
  // One session a,p,a,p,p: transitions a->p (x2), p->a (x1), p->p (x1).
  const Dataset d = HandDataset({{1, 0, 1, 0, 0}});
  const FeedbackStats stats = ComputeFeedbackStats(d, 2, 5);
  EXPECT_DOUBLE_EQ(stats.transition[0][0], 0.0);   // a->a.
  EXPECT_DOUBLE_EQ(stats.transition[0][1], 1.0);   // a->p.
  EXPECT_DOUBLE_EQ(stats.transition[1][0], 0.5);   // p->a.
  EXPECT_DOUBLE_EQ(stats.transition[1][1], 0.5);   // p->p.
  EXPECT_DOUBLE_EQ(stats.marginal_active, 2.0 / 5.0);
}

TEST(FeedbackStatsTest, RankCurveCountsPerPosition) {
  const Dataset d = HandDataset({{1, 0, 0}, {1, 1, 0}, {0, 0, 0}});
  const FeedbackStats stats = ComputeFeedbackStats(d, 2, 3);
  ASSERT_EQ(stats.active_rate_by_rank.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.active_rate_by_rank[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.active_rate_by_rank[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.active_rate_by_rank[2], 0.0);
  for (int64_t support : stats.rank_support) EXPECT_EQ(support, 3);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(stats.active_rate_by_rank[t] +
                         stats.passive_rate_by_rank[t],
                     1.0);
  }
}

TEST(FeedbackStatsTest, RecentCountConditioning) {
  // Session p,p,a,a with window 2:
  //   t=2: window (p,p) recent=0, event a.
  //   t=3: window (p,a) recent=1, event a.
  const Dataset d = HandDataset({{0, 0, 1, 1}});
  const FeedbackStats stats = ComputeFeedbackStats(d, 2, 4, 20);
  ASSERT_EQ(stats.p_active_by_recent_count.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.p_active_by_recent_count[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.p_active_by_recent_count[1], 1.0);
  EXPECT_EQ(stats.recent_count_support[0], 1);
  EXPECT_EQ(stats.recent_count_support[1], 1);
  EXPECT_EQ(stats.recent_count_support[2], 0);
}

TEST(FeedbackStatsTest, PatternsRequireSupport) {
  // Patterns with fewer than 30 occurrences are dropped; this tiny
  // dataset therefore reports none.
  const Dataset d = HandDataset({{0, 0, 1, 1, 0, 0, 1, 0}});
  const FeedbackStats stats = ComputeFeedbackStats(d, 6, 8);
  EXPECT_TRUE(stats.patterns.empty());
}

}  // namespace
}  // namespace uae::data
