// Tier-1 smoke check for the tracing pipeline (no gtest, pure ctest):
// ctest launches this with UAE_TRACE_PATH pointing into the build tree,
// so tracing arms itself exactly the way a user run would (env read
// before main). The binary trains a 2-epoch cell, forces the export,
// and fails unless
//   - the Chrome trace JSON exists, parses, and is strictly well-nested
//     per thread (the Perfetto-loadability contract),
//   - the epoch -> batch -> op span hierarchy actually emitted
//     (trainer.epoch, trainer.batch, uae.nn.* all present, with epoch
//     ids as args and real thread ids),
//   - the `uae_trace` CLI (path in argv[1]) summarizes and validates the
//     same file with exit code 0.
// Exits non-zero with a diagnostic on the first violation.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/trace.h"
#include "core/experiment.h"
#include "data/generator.h"
#include "trace_analysis.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "trace_smoke FAILED: %s\n", what.c_str());
  return 1;
}

int CountSpans(const uae::tools::TraceData& trace, const std::string& name,
               bool* saw_epoch_arg = nullptr) {
  int count = 0;
  for (const uae::tools::AnalyzerEvent& event : trace.events) {
    if (event.phase == 'X' && event.name == name) {
      ++count;
      if (saw_epoch_arg != nullptr && event.HasArg("epoch")) {
        *saw_epoch_arg = true;
      }
    }
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = std::getenv("UAE_TRACE_PATH");
  if (trace_path == nullptr || trace_path[0] == '\0') {
    return Fail("UAE_TRACE_PATH is not set; ctest must provide it");
  }
  if (!uae::trace::Enabled()) {
    return Fail("tracing did not arm itself from UAE_TRACE_PATH");
  }

  uae::data::GeneratorConfig cfg =
      uae::data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 150;
  cfg.num_users = 40;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 25;
  const uae::data::Dataset dataset = uae::data::GenerateDataset(cfg, 3);

  uae::core::CellSpec spec;
  spec.model = uae::models::ModelKind::kFm;
  spec.method = std::nullopt;  // Base model: 2 epochs stay sub-second.
  spec.num_seeds = 1;
  spec.model_config.embed_dim = 4;
  spec.model_config.mlp_dims = {8};
  spec.train_config.epochs = 2;
  spec.train_config.batch_size = 64;
  const uae::core::CellResult result = uae::core::RunCell(dataset, spec);
  if (result.auc_runs.size() != 1) return Fail("cell did not run");

  if (!uae::trace::Stop()) return Fail("trace export failed");

  // 1. The export parses and honors the structural invariant.
  uae::StatusOr<uae::tools::TraceData> loaded =
      uae::tools::Load(trace_path);
  if (!loaded.ok()) {
    return Fail("trace unloadable: " + loaded.status().message());
  }
  const uae::tools::TraceData& trace = loaded.value();
  if (trace.kind != uae::tools::InputKind::kChromeTrace) {
    return Fail("trace did not load as a Chrome trace");
  }
  const uae::Status nesting = uae::tools::ValidateNesting(trace);
  if (!nesting.ok()) {
    return Fail("nesting violated: " + nesting.message());
  }

  // 2. The span hierarchy is really there: cell > run > train > epoch >
  //    batch > nn op, with epoch ids riding as args.
  bool epoch_has_arg = false, batch_has_arg = false;
  const int epochs = CountSpans(trace, "trainer.epoch", &epoch_has_arg);
  const int batches = CountSpans(trace, "trainer.batch", &batch_has_arg);
  if (CountSpans(trace, "core.cell") != 1) return Fail("no core.cell span");
  if (CountSpans(trace, "core.train") != 1) {
    return Fail("no core.train span");
  }
  if (epochs != 2) {
    return Fail("want 2 trainer.epoch spans, got " + std::to_string(epochs));
  }
  if (batches < 2) return Fail("trainer.batch spans missing");
  if (!epoch_has_arg || !batch_has_arg) {
    return Fail("epoch/batch spans lack the epoch arg");
  }
  bool saw_nn_op = false;
  bool saw_tid = false;
  for (const uae::tools::AnalyzerEvent& event : trace.events) {
    saw_nn_op |= event.name.rfind("uae.nn.", 0) == 0;
    saw_tid |= event.tid > 0;
  }
  if (!saw_nn_op) return Fail("no uae.nn.* op spans under the batches");
  if (!saw_tid) return Fail("events carry no thread ids");

  // 3. The shipped CLI agrees, end to end.
  if (argc > 1) {
    const std::string quoted = std::string("\"") + argv[1] + "\"";
    const std::string validate =
        quoted + " --validate \"" + trace_path + "\"";
    if (std::system(validate.c_str()) != 0) {
      return Fail("`uae_trace --validate` rejected the trace");
    }
    const std::string summarize = quoted + " \"" + trace_path + "\"";
    if (std::system(summarize.c_str()) != 0) {
      return Fail("`uae_trace` could not summarize the trace");
    }
    // A trace compared against itself must never flag a regression.
    const std::string compare = quoted + " --compare \"" + trace_path +
                                "\" \"" + trace_path + "\" > /dev/null";
    if (std::system(compare.c_str()) != 0) {
      return Fail("`uae_trace --compare` flagged trace vs itself");
    }
  }

  std::printf("trace_smoke OK: %zu events, %d epoch spans, %d batch spans, "
              "nesting + uae_trace verified\n",
              trace.events.size(), epochs, batches);
  return 0;
}
