#include <gtest/gtest.h>

#include <cmath>

#include "nn/node.h"
#include "nn/ops.h"

namespace uae::nn {
namespace {

NodePtr C(int rows, int cols, std::vector<float> v) {
  return Constant(Tensor(rows, cols, std::move(v)));
}

TEST(OpsTest, MatMulValues) {
  NodePtr a = C(2, 3, {1, 2, 3, 4, 5, 6});
  NodePtr b = C(3, 2, {7, 8, 9, 10, 11, 12});
  NodePtr c = MatMul(a, b);
  EXPECT_EQ(c->value.rows(), 2);
  EXPECT_EQ(c->value.cols(), 2);
  EXPECT_FLOAT_EQ(c->value.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c->value.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c->value.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c->value.at(1, 1), 154.0f);
}

TEST(OpsTest, AddSubMul) {
  NodePtr a = C(1, 3, {1, 2, 3});
  NodePtr b = C(1, 3, {10, 20, 30});
  EXPECT_FLOAT_EQ(Add(a, b)->value.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(Sub(b, a)->value.at(0, 2), 27.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)->value.at(0, 0), 10.0f);
}

TEST(OpsTest, Broadcasts) {
  NodePtr a = C(2, 2, {1, 2, 3, 4});
  NodePtr row = C(1, 2, {10, 20});
  NodePtr col = C(2, 1, {2, 3});
  NodePtr ar = AddRowVector(a, row);
  EXPECT_FLOAT_EQ(ar->value.at(1, 1), 24.0f);
  NodePtr mc = MulColVector(a, col);
  EXPECT_FLOAT_EQ(mc->value.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(mc->value.at(1, 0), 9.0f);
}

TEST(OpsTest, ScalarAndUnary) {
  NodePtr a = C(1, 2, {-1, 2});
  EXPECT_FLOAT_EQ(Neg(a)->value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(ScalarMul(a, 3.0f)->value.at(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f)->value.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(OneMinus(a)->value.at(0, 1), -1.0f);
  EXPECT_FLOAT_EQ(Relu(a)->value.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(a)->value.at(0, 1), 2.0f);
  EXPECT_NEAR(Sigmoid(C(1, 1, {0.0f}))->value.ScalarValue(), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(C(1, 1, {0.5f}))->value.ScalarValue(), std::tanh(0.5f),
              1e-6);
  EXPECT_NEAR(Exp(C(1, 1, {1.0f}))->value.ScalarValue(), std::exp(1.0f),
              1e-5);
  EXPECT_NEAR(Log(C(1, 1, {2.0f}))->value.ScalarValue(), std::log(2.0f),
              1e-6);
}

TEST(OpsTest, SoftplusIsStableForLargeInputs) {
  EXPECT_NEAR(Softplus(C(1, 1, {100.0f}))->value.ScalarValue(), 100.0f, 1e-4);
  EXPECT_NEAR(Softplus(C(1, 1, {-100.0f}))->value.ScalarValue(), 0.0f, 1e-6);
  EXPECT_NEAR(Softplus(C(1, 1, {0.0f}))->value.ScalarValue(),
              std::log(2.0f), 1e-6);
}

TEST(OpsTest, Reductions) {
  NodePtr a = C(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a)->value.ScalarValue(), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(a)->value.ScalarValue(), 3.5f);
  NodePtr rs = RowSum(a);
  EXPECT_EQ(rs->value.cols(), 1);
  EXPECT_FLOAT_EQ(rs->value.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs->value.at(1, 0), 15.0f);
}

TEST(OpsTest, ConcatAndSlice) {
  NodePtr a = C(2, 1, {1, 2});
  NodePtr b = C(2, 2, {3, 4, 5, 6});
  NodePtr cat = ConcatCols({a, b});
  EXPECT_EQ(cat->value.cols(), 3);
  EXPECT_FLOAT_EQ(cat->value.at(1, 2), 6.0f);
  NodePtr sl = SliceCols(cat, 1, 2);
  EXPECT_FLOAT_EQ(sl->value.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(sl->value.at(1, 1), 6.0f);
}

TEST(OpsTest, SoftmaxRowsNormalizes) {
  NodePtr a = C(2, 3, {1, 2, 3, -1, 0, 1});
  NodePtr s = SoftmaxRows(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GT(s->value.at(r, c), 0.0f);
      sum += s->value.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
    // Monotone in the logits.
    EXPECT_LT(s->value.at(r, 0), s->value.at(r, 2));
  }
}

TEST(OpsTest, SoftmaxHandlesLargeLogits) {
  NodePtr s = SoftmaxRows(C(1, 2, {1000.0f, 999.0f}));
  EXPECT_NEAR(s->value.at(0, 0) + s->value.at(0, 1), 1.0f, 1e-6);
  EXPECT_GT(s->value.at(0, 0), s->value.at(0, 1));
}

TEST(OpsTest, EmbeddingLookupGathersRows) {
  NodePtr table = C(3, 2, {0, 1, 10, 11, 20, 21});
  NodePtr out = EmbeddingLookup(table, {2, 0, 2});
  EXPECT_EQ(out->value.rows(), 3);
  EXPECT_FLOAT_EQ(out->value.at(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(out->value.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out->value.at(2, 0), 20.0f);
}

TEST(OpsTest, WeightedSoftplusSumMatchesManual) {
  NodePtr z = C(3, 1, {0.5f, -1.0f, 2.0f});
  Tensor w(3, 1, {1.0f, 2.0f, 0.5f});
  NodePtr out = WeightedSoftplusSum(z, w, 1.0f);
  const double expected = 1.0 * std::log1p(std::exp(0.5)) +
                          2.0 * std::log1p(std::exp(-1.0)) +
                          0.5 * std::log1p(std::exp(2.0));
  EXPECT_NEAR(out->value.ScalarValue(), expected, 1e-5);
}

TEST(OpsTest, WeightedSoftplusSumIsLogLossOnLogits) {
  // pos weight on sign=-1 plus neg weight on sign=+1 equals binary cross
  // entropy of sigmoid(z).
  const float z = 0.7f;
  NodePtr logits = C(1, 1, {z});
  NodePtr pos = WeightedSoftplusSum(logits, Tensor::Scalar(1.0f), -1.0f);
  const double p = 1.0 / (1.0 + std::exp(-z));
  EXPECT_NEAR(pos->value.ScalarValue(), -std::log(p), 1e-6);
  NodePtr neg = WeightedSoftplusSum(logits, Tensor::Scalar(1.0f), 1.0f);
  EXPECT_NEAR(neg->value.ScalarValue(), -std::log(1.0 - p), 1e-6);
}

TEST(OpsTest, RequiresGradPropagates) {
  NodePtr leaf = MakeLeaf(Tensor(1, 2), /*requires_grad=*/true);
  NodePtr constant = C(1, 2, {1, 2});
  EXPECT_TRUE(Add(leaf, constant)->requires_grad);
  EXPECT_FALSE(Add(constant, constant)->requires_grad);
}

TEST(OpsTest, BackwardAccumulatesIntoLeaves) {
  NodePtr x = MakeLeaf(Tensor(1, 1, {3.0f}), /*requires_grad=*/true);
  // y = x^2 -> dy/dx = 6.
  NodePtr y = SumAll(Mul(x, x));
  Backward(y);
  EXPECT_NEAR(x->grad.ScalarValue(), 6.0f, 1e-5);
  // A second backward accumulates.
  NodePtr y2 = SumAll(Mul(x, x));
  Backward(y2);
  EXPECT_NEAR(x->grad.ScalarValue(), 12.0f, 1e-5);
}

TEST(OpsTest, DiamondGraphGradients) {
  // z = (x + x) * x = 2x^2 -> dz/dx = 4x.
  NodePtr x = MakeLeaf(Tensor(1, 1, {2.0f}), /*requires_grad=*/true);
  NodePtr z = SumAll(Mul(Add(x, x), x));
  Backward(z);
  EXPECT_NEAR(x->grad.ScalarValue(), 8.0f, 1e-5);
}

}  // namespace
}  // namespace uae::nn
