#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/world.h"
#include "models/recommender.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "sim/ab_test.h"

namespace uae::sim {
namespace {

data::GeneratorConfig SmallWorldConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 80;
  cfg.num_songs = 200;
  cfg.num_artists = 30;
  cfg.num_albums = 60;
  return cfg;
}

/// Scores events by their first dense feature (the noisy affinity proxy)
/// times a gain — a stand-in ranker with controllable quality. Also
/// demonstrates that the Recommender interface is user-extensible.
class AffinityRanker : public models::Recommender {
 public:
  explicit AffinityRanker(float gain) : gain_(gain) {}

  const char* name() const override { return "AffinityRanker"; }

  nn::NodePtr Logits(const data::Dataset& dataset,
                     const std::vector<data::EventRef>& batch) override {
    nn::Tensor out(static_cast<int>(batch.size()), 1);
    for (size_t r = 0; r < batch.size(); ++r) {
      const data::Event& event =
          dataset.sessions[batch[r].session].events[batch[r].step];
      out.at(static_cast<int>(r), 0) = gain_ * (event.dense[0] - 0.5f);
    }
    return nn::Constant(std::move(out));
  }

  std::vector<nn::NodePtr> Parameters() const override { return {}; }

 private:
  float gain_;
};

/// Scores every candidate identically (random playlist order baseline).
class ConstantRanker : public models::Recommender {
 public:
  const char* name() const override { return "ConstantRanker"; }

  nn::NodePtr Logits(const data::Dataset& dataset,
                     const std::vector<data::EventRef>& batch) override {
    (void)dataset;
    return nn::Constant(nn::Tensor(static_cast<int>(batch.size()), 1));
  }

  std::vector<nn::NodePtr> Parameters() const override { return {}; }
};

AbTestConfig FastAbConfig() {
  AbTestConfig cfg;
  cfg.days = 3;
  cfg.sessions_per_day = 120;
  cfg.playlist_length = 10;
  cfg.candidate_pool = 30;
  return cfg;
}

TEST(AbTestTest, IdenticalModelsShowNoSystematicUplift) {
  const data::World world(SmallWorldConfig(), 41);
  AffinityRanker control(4.0f), treatment(4.0f);
  const AbTestResult result =
      RunAbTest(world, &control, &treatment, FastAbConfig());
  ASSERT_EQ(result.days.size(), 3u);
  // Same ranking, independent interaction noise: uplift within ~1.5%.
  EXPECT_LT(std::fabs(result.avg_play_count_uplift_pct), 1.5);
  EXPECT_LT(std::fabs(result.avg_play_time_uplift_pct), 1.5);
}

TEST(AbTestTest, BetterRankerWinsPlayCountAndTime) {
  const data::World world(SmallWorldConfig(), 42);
  ConstantRanker control;
  AffinityRanker treatment(6.0f);
  AbTestConfig cfg = FastAbConfig();
  cfg.sessions_per_day = 200;
  const AbTestResult result = RunAbTest(world, &control, &treatment, cfg);
  EXPECT_GT(result.avg_play_count_uplift_pct, 0.5);
  EXPECT_GT(result.avg_play_time_uplift_pct, 0.5);
}

TEST(AbTestTest, DeterministicInSeed) {
  const data::World world(SmallWorldConfig(), 43);
  ConstantRanker control;
  AffinityRanker treatment(3.0f);
  const AbTestResult a =
      RunAbTest(world, &control, &treatment, FastAbConfig());
  const AbTestResult b =
      RunAbTest(world, &control, &treatment, FastAbConfig());
  ASSERT_EQ(a.days.size(), b.days.size());
  for (size_t i = 0; i < a.days.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.days[i].play_time_uplift_pct,
                     b.days[i].play_time_uplift_pct);
  }
}

// The model/model overload now stages the treatment model through a
// RolloutController (canary -> ramp -> full during the experiment).
// Fig. 7's numbers must not notice: serving the same model straight
// through an engine — no rollout machinery at all — has to give
// byte-identical day metrics.
TEST(AbTestTest, RolloutServingPathMatchesDirectEngineByteForByte) {
  const data::World world(SmallWorldConfig(), 45);
  ConstantRanker control;
  AffinityRanker treatment(3.0f);
  const AbTestConfig cfg = FastAbConfig();
  const AbTestResult staged = RunAbTest(world, &control, &treatment, cfg);

  const std::shared_ptr<const serve::ModelSnapshot> snapshot =
      serve::ModelSnapshot::FromModules(
          world.schema(),
          std::shared_ptr<models::Recommender>(&treatment,
                                               [](models::Recommender*) {}),
          /*tower=*/nullptr);
  serve::EngineConfig engine_config;
  engine_config.max_wait_us = 0;
  engine_config.playlist_length = cfg.playlist_length;
  serve::Engine engine(snapshot, engine_config);
  const AbTestResult direct = RunAbTest(world, &control, &engine, cfg);

  ASSERT_EQ(staged.days.size(), direct.days.size());
  for (size_t i = 0; i < staged.days.size(); ++i) {
    EXPECT_DOUBLE_EQ(staged.days[i].control.play_time,
                     direct.days[i].control.play_time);
    EXPECT_DOUBLE_EQ(staged.days[i].treatment.play_time,
                     direct.days[i].treatment.play_time);
    EXPECT_DOUBLE_EQ(staged.days[i].treatment.play_count,
                     direct.days[i].treatment.play_count);
    EXPECT_DOUBLE_EQ(staged.days[i].play_time_uplift_pct,
                     direct.days[i].play_time_uplift_pct);
  }
  EXPECT_DOUBLE_EQ(staged.avg_play_count_uplift_pct,
                   direct.avg_play_count_uplift_pct);
}

TEST(AbTestTest, MetricsArePopulatedPerDay) {
  const data::World world(SmallWorldConfig(), 44);
  ConstantRanker control;
  AffinityRanker treatment(3.0f);
  const AbTestResult result =
      RunAbTest(world, &control, &treatment, FastAbConfig());
  for (const AbDayResult& day : result.days) {
    EXPECT_GT(day.control.play_count, 0.0);
    EXPECT_GT(day.control.play_time, 0.0);
    EXPECT_GT(day.treatment.play_count, 0.0);
    EXPECT_GT(day.treatment.play_time, 0.0);
  }
  // Averages equal the day means.
  double count_sum = 0.0;
  for (const AbDayResult& day : result.days) {
    count_sum += day.play_count_uplift_pct;
  }
  EXPECT_NEAR(result.avg_play_count_uplift_pct,
              count_sum / result.days.size(), 1e-9);
}

}  // namespace
}  // namespace uae::sim
