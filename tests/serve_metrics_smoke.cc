// Tier-1 smoke check for the live serving observability stack (no
// gtest, pure ctest): replays a small load through serve::RunReplay
// with the metrics export, exemplar slowlog, and SLO tracking all on,
// then fails unless
//   - the Prometheus export file exists, parses with the strict
//     exposition parser, and carries the serve metrics (requests,
//     in-flight drained to zero, per-stage histograms with monotonic
//     cumulative buckets),
//   - the exemplar slowlog contains only above-threshold JSONL records
//     that parse and cross-check against their own threshold field,
//   - the shipped `uae_top` CLI (path in argv[1]) summarizes the same
//     export via `--once --json` with exit code 0 and sane fields.
// Exits non-zero with a diagnostic on the first violation.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "common/telemetry_export.h"
#include "serve/replay.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "serve_metrics_smoke FAILED: %s\n", what.c_str());
  return 1;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const uae::telemetry::PromSample* Find(
    const std::vector<uae::telemetry::PromSample>& samples,
    const std::string& name) {
  for (const uae::telemetry::PromSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: serve_metrics_smoke <path-to-uae_top>");
  }
  const std::string uae_top = argv[1];
  const std::string export_path = "serve_metrics_smoke_out.prom";
  const std::string slowlog_path = "serve_metrics_smoke_slowlog.jsonl";

  uae::serve::ReplayConfig config;
  config.world = uae::data::GeneratorConfig::ProductPreset();
  config.world.num_sessions = 150;
  config.world.num_users = 40;
  config.world.num_songs = 100;
  config.world.num_artists = 20;
  config.world.num_albums = 40;
  config.requests = 48;
  config.history_length = 24;
  config.candidates = 6;
  config.client_threads = 4;
  config.engine.max_wait_us = 0;
  config.metrics_export_path = export_path;
  config.metrics_export_interval_ms = 50;
  config.slowlog_path = slowlog_path;
  config.slo = true;
  // Aggressive exemplar settings so a short run reliably arms the
  // threshold and captures real tail requests.
  config.engine.recorder.exemplar_quantile = 0.9;
  config.engine.recorder.exemplar_min_samples = 8;
  // Manufacture a latency tail: ~10% of scored requests stall 50ms via
  // the seeded fault point (the same chaos knob uae_serve_replay
  // exposes), which is decades above the typical sub-millisecond score,
  // so the rolling-p90 threshold reliably flags them as exemplars.
  uae::FaultInjector::Instance().Arm(
      "serve.score.delay",
      {/*probability=*/0.1, /*seed=*/1234, /*delay_micros=*/50000});

  const uae::StatusOr<uae::serve::ReplayReport> replayed =
      uae::serve::RunReplay(config);
  if (!replayed.ok()) {
    return Fail("replay failed: " + replayed.status().ToString());
  }

  // --- The export file is valid exposition format with serve coverage.
  const std::string text = ReadFile(export_path);
  if (text.empty()) return Fail("export file missing or empty");
  const uae::StatusOr<std::vector<uae::telemetry::PromSample>> parsed =
      uae::telemetry::ParsePrometheusText(text);
  if (!parsed.ok()) {
    return Fail("export does not parse: " + parsed.status().ToString());
  }
  const std::vector<uae::telemetry::PromSample>& samples = parsed.value();

  const uae::telemetry::PromSample* requests =
      Find(samples, "uae_serve_requests");
  if (requests == nullptr) return Fail("uae_serve_requests missing");
  const double expected_requests = 2.0 * config.requests;
  if (requests->value != expected_requests) {
    return Fail("uae_serve_requests = " + std::to_string(requests->value) +
                ", want " + std::to_string(expected_requests));
  }
  const uae::telemetry::PromSample* in_flight =
      Find(samples, "uae_serve_in_flight");
  if (in_flight == nullptr) return Fail("uae_serve_in_flight missing");
  if (in_flight->value != 0.0) {
    return Fail("uae_serve_in_flight = " + std::to_string(in_flight->value) +
                " after a fully drained run, want 0");
  }
  for (const char* name :
       {"uae_serve_queue_wait_s_count", "uae_serve_score_s_count",
        "uae_serve_batch_occupancy_count", "uae_serve_slo_budget_remaining",
        "uae_export_uptime_seconds"}) {
    if (Find(samples, name) == nullptr) {
      return Fail(std::string(name) + " missing from export");
    }
  }
  // Cumulative histogram buckets never decrease and close at _count.
  double last = 0.0;
  double inf_value = -1.0;
  for (const uae::telemetry::PromSample& sample : samples) {
    if (sample.name != "uae_serve_request_s_bucket") continue;
    if (sample.value < last) {
      return Fail("uae_serve_request_s_bucket not monotonic");
    }
    last = sample.value;
    if (sample.Label("le") == "+Inf") inf_value = sample.value;
  }
  const uae::telemetry::PromSample* request_count =
      Find(samples, "uae_serve_request_s_count");
  if (request_count == nullptr || inf_value != request_count->value) {
    return Fail("uae_serve_request_s buckets do not close at _count");
  }

  // --- The slowlog holds only above-threshold exemplars.
  std::ifstream slowlog(slowlog_path);
  if (!slowlog) return Fail("slowlog missing at " + slowlog_path);
  std::string line;
  int64_t exemplar_lines = 0;
  while (std::getline(slowlog, line)) {
    if (line.empty()) continue;
    ++exemplar_lines;
    const uae::StatusOr<uae::json::Value> record = uae::json::Parse(line);
    if (!record.ok()) {
      return Fail("slowlog line does not parse: " + line);
    }
    const double total_ms = record.value().GetNumber("total_ms");
    const double threshold_ms = record.value().GetNumber("threshold_ms");
    if (!(total_ms > threshold_ms) || threshold_ms <= 0.0) {
      return Fail("slowlog exemplar not above threshold: " + line);
    }
    if (record.value().Find("spans") == nullptr) {
      return Fail("slowlog exemplar missing spans: " + line);
    }
  }
  if (exemplar_lines != replayed.value().exemplars) {
    return Fail("slowlog has " + std::to_string(exemplar_lines) +
                " lines but the report counted " +
                std::to_string(replayed.value().exemplars));
  }
  if (exemplar_lines == 0) {
    return Fail("no exemplars captured despite injected 50ms tail");
  }

  // --- uae_top summarizes the export end to end.
  const std::string command =
      uae_top + " --once --json --file " + export_path;
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return Fail("cannot launch " + command);
  std::string output;
  char chunk[512];
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) output += chunk;
  const int status = pclose(pipe);
  if (status != 0) {
    return Fail("uae_top exited non-zero: " + output);
  }
  const uae::StatusOr<uae::json::Value> summary = uae::json::Parse(output);
  if (!summary.ok()) {
    return Fail("uae_top --json output does not parse: " + output);
  }
  const uae::json::Value& doc = summary.value();
  if (doc.GetNumber("requests") != expected_requests) {
    return Fail("uae_top requests = " +
                std::to_string(doc.GetNumber("requests")) + ", want " +
                std::to_string(expected_requests));
  }
  for (const char* key : {"latency_ms", "versions", "cache", "slo"}) {
    if (doc.Find(key) == nullptr) {
      return Fail(std::string("uae_top summary missing '") + key + "'");
    }
  }
  if (doc.Find("slo")->GetNumber("budget_remaining", -1.0) < 0.0) {
    return Fail("uae_top slo.budget_remaining missing or negative");
  }

  std::printf("serve_metrics_smoke OK: %lld requests exported, %lld "
              "exemplars, uae_top summary valid\n",
              static_cast<long long>(expected_requests),
              static_cast<long long>(exemplar_lines));
  return 0;
}
