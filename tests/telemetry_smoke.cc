// Tier-1 smoke check for the telemetry pipeline (no gtest, pure ctest):
// trains a 2-epoch cell with the JSONL sink enabled, then fails unless
//   - the JSONL is non-empty and every line is one well-formed flat JSON
//     object,
//   - each epoch produced a "trainer.epoch" record carrying loss,
//     events_per_sec throughput, and epoch_seconds timer stats,
//   - the run manifest was written next to the JSONL.
// Exits non-zero with a diagnostic on the first violation.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "core/experiment.h"
#include "data/generator.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "telemetry_smoke FAILED: %s\n", what.c_str());
  return 1;
}

bool WellFormed(const std::string& line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return false;
  }
  bool in_string = false;
  int depth = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return !in_string && depth == 0;
}

bool Has(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

}  // namespace

int main() {
  const std::string dir =
      std::filesystem::temp_directory_path() / "uae_telemetry_smoke";
  std::filesystem::create_directories(dir);
  const std::string jsonl = dir + "/run.jsonl";
  if (!uae::telemetry::ConfigureSink(jsonl)) {
    return Fail("cannot open sink at " + jsonl);
  }

  uae::data::GeneratorConfig cfg =
      uae::data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 150;
  cfg.num_users = 40;
  cfg.num_songs = 80;
  cfg.num_artists = 15;
  cfg.num_albums = 25;
  const uae::data::Dataset dataset = uae::data::GenerateDataset(cfg, 3);

  uae::core::CellSpec spec;
  spec.model = uae::models::ModelKind::kFm;
  spec.method = std::nullopt;  // Base model: 2 epochs stay sub-second.
  spec.num_seeds = 1;
  spec.model_config.embed_dim = 4;
  spec.model_config.mlp_dims = {8};
  spec.train_config.epochs = 2;
  spec.train_config.batch_size = 64;
  const uae::core::CellResult result = uae::core::RunCell(dataset, spec);
  if (result.auc_runs.size() != 1) return Fail("cell did not run");
  uae::telemetry::EmitMetricsSnapshot("smoke_end");
  const std::string manifest_path = uae::telemetry::ManifestPath();
  uae::telemetry::CloseSink();

  std::ifstream file(jsonl);
  if (!file.is_open()) return Fail("JSONL missing at " + jsonl);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  if (lines.empty()) return Fail("JSONL is empty");

  int epoch_records = 0;
  int metric_records = 0;
  for (const std::string& record : lines) {
    if (!WellFormed(record)) return Fail("malformed line: " + record);
    if (!Has(record, "type") || !Has(record, "ts")) {
      return Fail("record lacks type/ts: " + record);
    }
    if (record.find("\"type\":\"trainer.epoch\"") != std::string::npos) {
      ++epoch_records;
      for (const char* key :
           {"loss", "events_per_sec", "epoch_seconds", "valid_auc"}) {
        if (!Has(record, key)) {
          return Fail(std::string("epoch record lacks ") + key + ": " +
                      record);
        }
      }
    }
    if (record.find("\"type\":\"metric\"") != std::string::npos) {
      ++metric_records;
    }
  }
  if (epoch_records < 2) {
    return Fail("want >= 1 trainer.epoch record per epoch (2), got " +
                std::to_string(epoch_records));
  }
  if (metric_records == 0) return Fail("metrics snapshot missing");

  std::ifstream manifest(manifest_path);
  if (!manifest.is_open()) {
    return Fail("run manifest missing at " + manifest_path);
  }
  std::string manifest_line;
  std::getline(manifest, manifest_line);
  if (!WellFormed(manifest_line)) {
    return Fail("malformed manifest: " + manifest_line);
  }
  for (const char* key : {"model", "build", "duration_seconds", "auc_mean"}) {
    if (!Has(manifest_line, key)) {
      return Fail(std::string("manifest lacks ") + key);
    }
  }

  std::filesystem::remove_all(dir);
  std::printf("telemetry_smoke OK: %zu records, %d epoch records, "
              "%d metric records, manifest verified\n",
              lines.size(), epoch_records, metric_records);
  return 0;
}
