#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

#include "common/fault.h"
#include "data/generator.h"
#include "data/io.h"
#include "nn/layers.h"
#include "nn/serialize.h"

namespace uae {
namespace {

// ------------------------------------------------------------ data::io

data::Dataset TinyDataset() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 40;
  cfg.num_users = 15;
  cfg.num_songs = 30;
  cfg.num_artists = 8;
  cfg.num_albums = 10;
  return data::GenerateDataset(cfg, 3);
}

TEST(DatasetIoTest, RoundTripPreservesObservables) {
  const data::Dataset original = TinyDataset();
  const std::string path = testing::TempDir() + "/uae_dataset.txt";
  ASSERT_TRUE(data::WriteDatasetText(original, path).ok());

  const StatusOr<data::Dataset> loaded = data::ReadDatasetText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const data::Dataset& copy = loaded.value();

  EXPECT_EQ(copy.name, original.name);
  EXPECT_EQ(copy.num_feedback_types, original.num_feedback_types);
  EXPECT_EQ(copy.schema.num_sparse(), original.schema.num_sparse());
  EXPECT_EQ(copy.schema.num_dense(), original.schema.num_dense());
  ASSERT_EQ(copy.sessions.size(), original.sessions.size());
  for (size_t s = 0; s < copy.sessions.size(); ++s) {
    ASSERT_EQ(copy.sessions[s].length(), original.sessions[s].length());
    EXPECT_EQ(copy.sessions[s].user, original.sessions[s].user);
    for (int t = 0; t < copy.sessions[s].length(); ++t) {
      const data::Event& a = copy.sessions[s].events[t];
      const data::Event& b = original.sessions[s].events[t];
      EXPECT_EQ(a.action, b.action);
      EXPECT_EQ(a.sparse, b.sparse);
      ASSERT_EQ(a.dense.size(), b.dense.size());
      for (size_t f = 0; f < a.dense.size(); ++f) {
        EXPECT_NEAR(a.dense[f], b.dense[f], 1e-4);
      }
      EXPECT_NEAR(a.play_seconds, b.play_seconds, 1e-2);
    }
  }
  // A loaded dataset behaves like a real log: latents are absent.
  EXPECT_EQ(copy.sessions[0].events[0].true_alpha, 0.0f);
  // And it carries a usable chronological split.
  EXPECT_FALSE(copy.split.train.empty());
  EXPECT_FALSE(copy.split.test.empty());
}

TEST(DatasetIoTest, ParseFeedbackActionNames) {
  EXPECT_TRUE(data::ParseFeedbackAction("Like").ok());
  EXPECT_EQ(data::ParseFeedbackAction("Auto-play").value(),
            data::FeedbackAction::kAutoPlay);
  EXPECT_FALSE(data::ParseFeedbackAction("Boost").ok());
}

TEST(DatasetIoTest, RejectsMissingHeader) {
  const std::string path = testing::TempDir() + "/uae_bad_header.txt";
  std::ofstream(path) << "not a dataset\n";
  EXPECT_FALSE(data::ReadDatasetText(path).ok());
}

TEST(DatasetIoTest, RejectsOutOfVocabIds) {
  const std::string path = testing::TempDir() + "/uae_bad_vocab.txt";
  std::ofstream(path) << "# uae-dataset v1\n"
                      << "name Bad\n"
                      << "feedback_types 3\n"
                      << "sparse user_id:2 song_id:2\n"
                      << "dense affinity\n"
                      << "session 0 1\n"
                      << "event Like 10 100 | 0 5 | 0.5\n";  // song 5 >= 2.
  const StatusOr<data::Dataset> loaded = data::ReadDatasetText(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsTruncatedSession) {
  const std::string path = testing::TempDir() + "/uae_truncated.txt";
  std::ofstream(path) << "# uae-dataset v1\n"
                      << "name Bad\n"
                      << "feedback_types 3\n"
                      << "sparse user_id:2 song_id:2\n"
                      << "dense affinity\n"
                      << "session 0 2\n"
                      << "event Like 10 100 | 0 1 | 0.5\n";  // 1 of 2 events.
  EXPECT_FALSE(data::ReadDatasetText(path).ok());
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  const StatusOr<data::Dataset> loaded =
      data::ReadDatasetText("/nonexistent/nowhere.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// --------------------------------------------------------- nn::serialize

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(1);
  nn::Mlp original(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  Rng rng2(99);  // Different init.
  nn::Mlp restored(&rng2, 3, {4, 1}, nn::Activation::kRelu);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());

  const auto a = original.Parameters();
  const auto b = restored.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i]->value.SameShape(b[i]->value));
    for (int j = 0; j < a[i]->value.size(); ++j) {
      EXPECT_EQ(a[i]->value.data()[j], b[i]->value.data()[j]);
    }
  }
}

TEST(SerializeTest, ArchitectureMismatchFails) {
  Rng rng(1);
  nn::Mlp small(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_ckpt2.bin";
  ASSERT_TRUE(nn::SaveParameters(small, path).ok());

  nn::Mlp bigger(&rng, 3, {8, 1}, nn::Activation::kRelu);
  const Status status = nn::LoadParameters(&bigger, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SerializeTest, GarbageFileFails) {
  const std::string path = testing::TempDir() + "/uae_garbage.bin";
  std::ofstream(path) << "garbage";
  Rng rng(1);
  nn::Mlp mlp(&rng, 2, {1}, nn::Activation::kNone);
  EXPECT_FALSE(nn::LoadParameters(&mlp, path).ok());
}

TEST(SerializeTest, BitFlippedCheckpointRejectedByCrc) {
  Rng rng(1);
  nn::Mlp mlp(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_bitflip.bin";
  ASSERT_TRUE(nn::SaveParameters(mlp, path).ok());

  // Flip one bit in the middle of the payload.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  const std::streamoff target = size / 2;
  file.seekg(target);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(target);
  file.write(&byte, 1);
  file.close();

  const Status status = nn::LoadParameters(&mlp, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("CRC mismatch"), std::string::npos)
      << status.ToString();
}

TEST(SerializeTest, TruncatedCheckpointRejected) {
  Rng rng(1);
  nn::Mlp mlp(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_truncated_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(mlp, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  const Status status = nn::LoadParameters(&mlp, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializeTest, LegacyV1CheckpointStillLoads) {
  // Hand-write a v1 file (no CRC framing) for an Mlp(2, {1}) — one
  // Linear: weight [2,1], bias [1,1] — and load it with today's reader.
  const std::string path = testing::TempDir() + "/uae_v1.bin";
  {
    std::ofstream file(path, std::ios::binary);
    file.write("UAECKPT1", 8);
    const int32_t count = 2;
    file.write(reinterpret_cast<const char*>(&count), sizeof(count));
    const float weight[2] = {0.25f, -0.5f};
    const float bias[1] = {1.5f};
    int32_t rows = 2, cols = 1;
    file.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    file.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    file.write(reinterpret_cast<const char*>(weight), sizeof(weight));
    rows = 1;
    file.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    file.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    file.write(reinterpret_cast<const char*>(bias), sizeof(bias));
  }
  Rng rng(7);
  nn::Mlp mlp(&rng, 2, {1}, nn::Activation::kNone);
  ASSERT_TRUE(nn::LoadParameters(&mlp, path).ok());
  const auto params = mlp.Parameters();
  EXPECT_EQ(params[0]->value.at(0, 0), 0.25f);
  EXPECT_EQ(params[0]->value.at(1, 0), -0.5f);
  EXPECT_EQ(params[1]->value.at(0, 0), 1.5f);
}

TEST(SerializeTest, TornWriteKeepsPreviousCheckpoint) {
  Rng rng(1);
  nn::Mlp mlp(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_atomic.bin";
  ASSERT_TRUE(nn::SaveParameters(mlp, path).ok());

  // Arm a fault that always tears the next write: the save must fail
  // WITHOUT disturbing the durable copy at `path`.
  FaultInjector::Instance().Arm("ckpt.write", {1.0, /*seed=*/3});
  mlp.Parameters()[0]->value.at(0, 0) += 1.0f;
  const Status torn = nn::SaveParameters(mlp, path);
  FaultInjector::Instance().DisarmAll();
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kIoError);

  Rng rng2(99);
  nn::Mlp restored(&rng2, 3, {4, 1}, nn::Activation::kRelu);
  EXPECT_TRUE(nn::LoadParameters(&restored, path).ok());
}

TEST(SerializeTest, PackDoublesRoundTripsBitExactly) {
  const std::vector<double> values = {0.123456789012345678, -1e300,
                                      5e-324, 0.0, 0.9999999999999999};
  const std::vector<double> back =
      nn::UnpackDoubles(nn::PackDoubles(values));
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back[i], &values[i], sizeof(double)), 0);
  }
}

// ------------------------------------------------------- lenient import

/// A well-formed 2-session file with `garbage` malformed lines spliced
/// between event lines.
std::string WriteDirtyDataset(const std::string& path) {
  std::ofstream file(path);
  file << "# uae-dataset v1\n"
       << "name Dirty\n"
       << "feedback_types 3\n"
       << "sparse user_id:4 song_id:8\n"
       << "dense affinity\n"
       << "session 0 3\n"
       << "event Like 10 100 | 0 1 | 0.5\n"
       << "event Skip 3 200 | 0 2 X 0.25\n"    // Corrupt: bar replaced.
       << "event Auto-play 90 90 | 0 3 | 0.75\n"
       << "session 1 2\n"
       << "evnt Like 10 100 | 1 4 | 0.5\n"     // Corrupt: keyword typo.
       << "event Dislike 5 180 | 1 5 | 0.1\n";
  return path;
}

TEST(DatasetIoTest, StrictModeRejectsGarbageLinesWithLineNumber) {
  const std::string path =
      WriteDirtyDataset(testing::TempDir() + "/uae_dirty_strict.txt");
  const StatusOr<data::Dataset> loaded = data::ReadDatasetText(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // The first corrupt line is line 8.
  EXPECT_NE(loaded.status().message().find("line 8"), std::string::npos)
      << loaded.status().ToString();
}

TEST(DatasetIoTest, LenientModeSkipsGarbageLines) {
  const std::string path =
      WriteDirtyDataset(testing::TempDir() + "/uae_dirty_lenient.txt");
  data::IoReadReport report;
  const StatusOr<data::Dataset> loaded =
      data::ReadDatasetText(path, data::IoOptions{.max_bad_lines = 10},
                            &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Both corrupt lines skipped; the typo'd keyword also orphans nothing.
  EXPECT_EQ(report.bad_lines, 2);
  EXPECT_EQ(report.dropped_sessions, 0);
  ASSERT_EQ(loaded.value().sessions.size(), 2u);
  EXPECT_EQ(loaded.value().sessions[0].events.size(), 2u);
  EXPECT_EQ(loaded.value().sessions[1].events.size(), 1u);
}

TEST(DatasetIoTest, LenientModeBudgetIsEnforced) {
  const std::string path =
      WriteDirtyDataset(testing::TempDir() + "/uae_dirty_budget.txt");
  const StatusOr<data::Dataset> loaded =
      data::ReadDatasetText(path, data::IoOptions{.max_bad_lines = 1},
                            nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("too many malformed lines"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(DatasetIoTest, LenientModeDropsFullyCorruptSessions) {
  const std::string path = testing::TempDir() + "/uae_dirty_drop.txt";
  {
    std::ofstream file(path);
    file << "# uae-dataset v1\n"
         << "name Drop\n"
         << "feedback_types 3\n"
         << "sparse user_id:4 song_id:8\n"
         << "dense affinity\n"
         << "session 0 1\n"
         << "event Boost 10 100 | 0 1 | 0.5\n";  // Unknown action.
    // Enough clean sessions that the rebuilt 8:1:1 split stays valid.
    for (int s = 1; s <= 3; ++s) {
      file << "session " << s << " 1\n"
           << "event Like 10 100 | " << s << " 2 | 0.5\n";
    }
  }
  data::IoReadReport report;
  const StatusOr<data::Dataset> loaded =
      data::ReadDatasetText(path, data::IoOptions{.max_bad_lines = 10},
                            &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.bad_lines, 1);
  EXPECT_EQ(report.dropped_sessions, 1);
  ASSERT_EQ(loaded.value().sessions.size(), 3u);
  EXPECT_EQ(loaded.value().sessions[0].user, 1);
}

}  // namespace
}  // namespace uae
