#include <gtest/gtest.h>

#include <fstream>

#include "data/generator.h"
#include "data/io.h"
#include "nn/layers.h"
#include "nn/serialize.h"

namespace uae {
namespace {

// ------------------------------------------------------------ data::io

data::Dataset TinyDataset() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = 40;
  cfg.num_users = 15;
  cfg.num_songs = 30;
  cfg.num_artists = 8;
  cfg.num_albums = 10;
  return data::GenerateDataset(cfg, 3);
}

TEST(DatasetIoTest, RoundTripPreservesObservables) {
  const data::Dataset original = TinyDataset();
  const std::string path = testing::TempDir() + "/uae_dataset.txt";
  ASSERT_TRUE(data::WriteDatasetText(original, path).ok());

  const StatusOr<data::Dataset> loaded = data::ReadDatasetText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const data::Dataset& copy = loaded.value();

  EXPECT_EQ(copy.name, original.name);
  EXPECT_EQ(copy.num_feedback_types, original.num_feedback_types);
  EXPECT_EQ(copy.schema.num_sparse(), original.schema.num_sparse());
  EXPECT_EQ(copy.schema.num_dense(), original.schema.num_dense());
  ASSERT_EQ(copy.sessions.size(), original.sessions.size());
  for (size_t s = 0; s < copy.sessions.size(); ++s) {
    ASSERT_EQ(copy.sessions[s].length(), original.sessions[s].length());
    EXPECT_EQ(copy.sessions[s].user, original.sessions[s].user);
    for (int t = 0; t < copy.sessions[s].length(); ++t) {
      const data::Event& a = copy.sessions[s].events[t];
      const data::Event& b = original.sessions[s].events[t];
      EXPECT_EQ(a.action, b.action);
      EXPECT_EQ(a.sparse, b.sparse);
      ASSERT_EQ(a.dense.size(), b.dense.size());
      for (size_t f = 0; f < a.dense.size(); ++f) {
        EXPECT_NEAR(a.dense[f], b.dense[f], 1e-4);
      }
      EXPECT_NEAR(a.play_seconds, b.play_seconds, 1e-2);
    }
  }
  // A loaded dataset behaves like a real log: latents are absent.
  EXPECT_EQ(copy.sessions[0].events[0].true_alpha, 0.0f);
  // And it carries a usable chronological split.
  EXPECT_FALSE(copy.split.train.empty());
  EXPECT_FALSE(copy.split.test.empty());
}

TEST(DatasetIoTest, ParseFeedbackActionNames) {
  EXPECT_TRUE(data::ParseFeedbackAction("Like").ok());
  EXPECT_EQ(data::ParseFeedbackAction("Auto-play").value(),
            data::FeedbackAction::kAutoPlay);
  EXPECT_FALSE(data::ParseFeedbackAction("Boost").ok());
}

TEST(DatasetIoTest, RejectsMissingHeader) {
  const std::string path = testing::TempDir() + "/uae_bad_header.txt";
  std::ofstream(path) << "not a dataset\n";
  EXPECT_FALSE(data::ReadDatasetText(path).ok());
}

TEST(DatasetIoTest, RejectsOutOfVocabIds) {
  const std::string path = testing::TempDir() + "/uae_bad_vocab.txt";
  std::ofstream(path) << "# uae-dataset v1\n"
                      << "name Bad\n"
                      << "feedback_types 3\n"
                      << "sparse user_id:2 song_id:2\n"
                      << "dense affinity\n"
                      << "session 0 1\n"
                      << "event Like 10 100 | 0 5 | 0.5\n";  // song 5 >= 2.
  const StatusOr<data::Dataset> loaded = data::ReadDatasetText(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsTruncatedSession) {
  const std::string path = testing::TempDir() + "/uae_truncated.txt";
  std::ofstream(path) << "# uae-dataset v1\n"
                      << "name Bad\n"
                      << "feedback_types 3\n"
                      << "sparse user_id:2 song_id:2\n"
                      << "dense affinity\n"
                      << "session 0 2\n"
                      << "event Like 10 100 | 0 1 | 0.5\n";  // 1 of 2 events.
  EXPECT_FALSE(data::ReadDatasetText(path).ok());
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  const StatusOr<data::Dataset> loaded =
      data::ReadDatasetText("/nonexistent/nowhere.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// --------------------------------------------------------- nn::serialize

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(1);
  nn::Mlp original(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  Rng rng2(99);  // Different init.
  nn::Mlp restored(&rng2, 3, {4, 1}, nn::Activation::kRelu);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());

  const auto a = original.Parameters();
  const auto b = restored.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i]->value.SameShape(b[i]->value));
    for (int j = 0; j < a[i]->value.size(); ++j) {
      EXPECT_EQ(a[i]->value.data()[j], b[i]->value.data()[j]);
    }
  }
}

TEST(SerializeTest, ArchitectureMismatchFails) {
  Rng rng(1);
  nn::Mlp small(&rng, 3, {4, 1}, nn::Activation::kRelu);
  const std::string path = testing::TempDir() + "/uae_ckpt2.bin";
  ASSERT_TRUE(nn::SaveParameters(small, path).ok());

  nn::Mlp bigger(&rng, 3, {8, 1}, nn::Activation::kRelu);
  const Status status = nn::LoadParameters(&bigger, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SerializeTest, GarbageFileFails) {
  const std::string path = testing::TempDir() + "/uae_garbage.bin";
  std::ofstream(path) << "garbage";
  Rng rng(1);
  nn::Mlp mlp(&rng, 2, {1}, nn::Activation::kNone);
  EXPECT_FALSE(nn::LoadParameters(&mlp, path).ok());
}

}  // namespace
}  // namespace uae
