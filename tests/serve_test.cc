#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "data/world.h"
#include "models/registry.h"
#include "models/trainer.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/replay.h"
#include "serve/session_cache.h"

namespace uae::serve {
namespace {

data::GeneratorConfig SmallWorldConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_users = 60;
  cfg.num_songs = 150;
  cfg.num_artists = 25;
  cfg.num_albums = 50;
  return cfg;
}

std::shared_ptr<const ModelSnapshot> BuildSnapshot(
    const data::World& world, uint64_t seed, uint64_t version = 0,
    bool with_tower = true) {
  Rng rng(seed);
  models::ModelConfig model_config;
  std::shared_ptr<models::Recommender> model = models::CreateRecommender(
      models::ModelKind::kLr, &rng, world.schema(), model_config);
  std::shared_ptr<const attention::AttentionTower> tower;
  if (with_tower) {
    tower = std::make_shared<attention::AttentionTower>(
        &rng, world.schema(), attention::TowerConfig());
  }
  return ModelSnapshot::FromModules(world.schema(), std::move(model),
                                    std::move(tower), /*gamma=*/1.0f,
                                    version);
}

ScoreRequest MakeRequest(const data::World& world, int user, int history_len,
                         int num_candidates, Rng* rng) {
  ScoreRequest req;
  req.user = user;
  const int hour = static_cast<int>(rng->UniformInt(24));
  const int weekday = static_cast<int>(rng->UniformInt(7));
  std::vector<int> played(static_cast<size_t>(history_len));
  for (int& song : played) song = world.SampleSong(rng);
  req.history =
      world.SimulateSession(user, played, hour, weekday, rng).events;
  for (int c = 0; c < num_candidates; ++c) {
    const int song = world.SampleSong(rng);
    req.candidate_songs.push_back(song);
    req.candidates.push_back(world.ScoringEvent(user, song, hour, weekday));
  }
  return req;
}

EngineConfig ImmediateDispatch() {
  EngineConfig config;
  config.max_wait_us = 0;
  return config;
}

// ---------------------------------------------------------------------
// Session-state cache.

TEST(SessionCacheTest, LruEvictsOldestPerShard) {
  SessionStateCache::Config config;
  config.shards = 1;
  config.capacity_per_shard = 2;
  SessionStateCache cache(config);

  auto put = [&](int user) {
    SessionStateCache::Entry entry;
    entry.snapshot_version = 1;
    entry.event_count = 3;
    entry.state = nn::Tensor(1, 4);
    cache.Put(user, entry);
  };
  put(1);
  put(2);
  SessionStateCache::Entry out;
  // Touch user 1 so user 2 is the LRU entry when 3 arrives.
  ASSERT_TRUE(cache.Lookup(1, 1, 3, &out));
  put(3);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_FALSE(cache.Lookup(2, 1, 3, &out));
  EXPECT_TRUE(cache.Lookup(1, 1, 3, &out));
  EXPECT_TRUE(cache.Lookup(3, 1, 3, &out));
}

TEST(SessionCacheTest, VersionMismatchErasesStaleEntry) {
  SessionStateCache cache(SessionStateCache::Config{});
  SessionStateCache::Entry entry;
  entry.snapshot_version = 1;
  entry.event_count = 5;
  entry.state = nn::Tensor(1, 4);
  cache.Put(7, entry);

  SessionStateCache::Entry out;
  // A lookup from a newer snapshot misses and drops the stale state...
  EXPECT_FALSE(cache.Lookup(7, 2, 5, &out));
  EXPECT_EQ(cache.size(), 0);
  // ...so even the original version misses afterwards.
  EXPECT_FALSE(cache.Lookup(7, 1, 5, &out));
}

TEST(SessionCacheTest, LongerCachedPrefixMissesButSurvives) {
  SessionStateCache cache(SessionStateCache::Config{});
  SessionStateCache::Entry entry;
  entry.snapshot_version = 1;
  entry.event_count = 10;
  entry.state = nn::Tensor(1, 4);
  cache.Put(7, entry);

  // A request with a shorter history (user restarted the session) cannot
  // use state computed over 10 events, but the entry stays for the
  // longer-history requests.
  SessionStateCache::Entry out;
  EXPECT_FALSE(cache.Lookup(7, 1, 4, &out));
  EXPECT_EQ(cache.size(), 1);
  ASSERT_TRUE(cache.Lookup(7, 1, 10, &out));
  EXPECT_EQ(out.event_count, 10);
}

// ---------------------------------------------------------------------
// Determinism goldens: engine scores == direct offline forward, bit for
// bit, cold and warm, at 1 and 8 threads.

TEST(ServeGoldenTest, EngineMatchesDirectForwardColdAndWarm) {
  const data::World world(SmallWorldConfig(), 11);
  const std::shared_ptr<const ModelSnapshot> snapshot =
      BuildSnapshot(world, 21);
  Rng rng(5);
  const ScoreRequest request = MakeRequest(world, 9, 8, 5, &rng);
  const int n = static_cast<int>(request.candidates.size());

  // Direct CTR: the engine's probe-dataset construction, done by hand.
  data::Dataset probe;
  probe.schema = world.schema();
  data::Session probe_session;
  probe_session.user = request.user;
  probe_session.events = request.candidates;
  probe.sessions.push_back(probe_session);
  std::vector<data::EventRef> refs;
  for (int i = 0; i < n; ++i) refs.push_back({0, i});
  const std::vector<double> direct_ctr =
      models::ScoreEvents(snapshot->model(), probe, refs);

  // Direct alpha-hat per candidate: the *training* graph forward over
  // history + candidate; the last step's logit is the candidate's.
  std::vector<float> direct_alpha;
  for (int i = 0; i < n; ++i) {
    data::Dataset full;
    full.schema = world.schema();
    data::Session session;
    session.user = request.user;
    session.events = request.history;
    session.events.push_back(request.candidates[static_cast<size_t>(i)]);
    full.sessions.push_back(std::move(session));
    const attention::AttentionTower::Output out =
        snapshot->tower()->Forward(full, {0});
    direct_alpha.push_back(
        nn::infer::SigmoidValue(out.logits.back()->value.at(0, 0)));
  }

  const int restore_threads = parallel::NumThreads();
  for (const int threads : {1, 8}) {
    parallel::SetNumThreads(threads);
    Engine engine(snapshot, ImmediateDispatch());
    const StatusOr<ScoreResponse> cold = engine.Score(request);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    const StatusOr<ScoreResponse> warm = engine.Score(request);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();

    for (int i = 0; i < n; ++i) {
      const size_t k = static_cast<size_t>(i);
      // Exact equality on purpose: the serving path must share bits with
      // the offline forward, not just approximate it.
      EXPECT_EQ(cold.value().scores[k].ctr, direct_ctr[k])
          << "threads=" << threads << " candidate=" << i;
      EXPECT_EQ(cold.value().scores[k].alpha, direct_alpha[k])
          << "threads=" << threads << " candidate=" << i;
      EXPECT_EQ(warm.value().scores[k].ctr, cold.value().scores[k].ctr);
      EXPECT_EQ(warm.value().scores[k].alpha, cold.value().scores[k].alpha);
      EXPECT_EQ(warm.value().scores[k].reweighted,
                cold.value().scores[k].reweighted);
    }
    EXPECT_EQ(warm.value().playlist, cold.value().playlist);
  }
  parallel::SetNumThreads(restore_threads);
}

TEST(ServeGoldenTest, WarmRequestsHitTheCache) {
  const data::World world(SmallWorldConfig(), 12);
  Engine engine(BuildSnapshot(world, 22), ImmediateDispatch());
  Rng rng(6);
  const ScoreRequest request = MakeRequest(world, 3, 6, 3, &rng);

  telemetry::Counter* hits = telemetry::GetCounter("uae.serve.cache_hits");
  telemetry::Counter* misses =
      telemetry::GetCounter("uae.serve.cache_misses");
  const int64_t hits_before = hits->Get();
  const int64_t misses_before = misses->Get();
  ASSERT_TRUE(engine.Score(request).ok());
  EXPECT_EQ(misses->Get() - misses_before, 1);
  EXPECT_EQ(hits->Get() - hits_before, 0);
  ASSERT_TRUE(engine.Score(request).ok());
  EXPECT_EQ(hits->Get() - hits_before, 1);
}

// ---------------------------------------------------------------------
// Batching, shedding, validation.

TEST(EngineTest, CoalescesConcurrentRequestsIntoBatches) {
  const data::World world(SmallWorldConfig(), 13);
  EngineConfig config;
  config.max_batch = 8;
  config.max_wait_us = 50000;  // Linger long enough to gather the burst.
  Engine engine(BuildSnapshot(world, 23), config);

  Rng rng(7);
  std::vector<ScoreRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(MakeRequest(world, i, 4, 2, &rng));
  }
  telemetry::Counter* batches = telemetry::GetCounter("uae.serve.batches");
  const int64_t batches_before = batches->Get();
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      if (engine.Score(requests[static_cast<size_t>(i)]).ok()) ++ok_count;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), 8);
  // 8 requests in fewer than 8 dispatches proves coalescing happened;
  // the exact grouping depends on arrival timing.
  EXPECT_LT(batches->Get() - batches_before, 8);
}

TEST(EngineTest, ExpiredDeadlineIsShedNotServed) {
  const data::World world(SmallWorldConfig(), 14);
  Engine engine(BuildSnapshot(world, 24), ImmediateDispatch());
  Rng rng(8);
  ScoreRequest request = MakeRequest(world, 1, 4, 2, &rng);
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  telemetry::Counter* shed = telemetry::GetCounter("uae.serve.shed");
  const int64_t shed_before = shed->Get();
  const StatusOr<ScoreResponse> response = engine.Score(std::move(request));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed->Get() - shed_before, 1);
}

TEST(EngineTest, FullQueueShedsInsteadOfStalling) {
  const data::World world(SmallWorldConfig(), 15);
  EngineConfig config;
  config.max_wait_us = 0;
  config.max_batch = 1;
  config.max_queue = 1;
  Engine engine(BuildSnapshot(world, 25), config);

  // Slow requests: a long cold history keeps the dispatcher busy while
  // the burst arrives, so the bounded queue must turn clients away.
  Rng rng(9);
  const data::Event step = world.ScoringEvent(0, world.SampleSong(&rng), 3, 2);
  auto slow_request = [&](int user) {
    ScoreRequest req;
    req.user = user;
    req.history.assign(1500, step);
    req.candidate_songs = {0};
    req.candidates = {world.ScoringEvent(user, 0, 3, 2)};
    return req;
  };

  telemetry::Counter* shed = telemetry::GetCounter("uae.serve.shed");
  const int64_t shed_before = shed->Get();
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      const StatusOr<ScoreResponse> response = engine.Score(slow_request(i));
      if (response.ok()) {
        ++ok_count;
      } else {
        EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
        ++shed_count;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(shed_count.load(), 1);
  EXPECT_EQ(shed->Get() - shed_before, shed_count.load());
}

TEST(EngineTest, RejectsMalformedRequests) {
  const data::World world(SmallWorldConfig(), 16);
  Engine engine(BuildSnapshot(world, 26), ImmediateDispatch());
  Rng rng(10);

  ScoreRequest empty;
  empty.user = 1;
  EXPECT_EQ(engine.Score(empty).status().code(),
            StatusCode::kInvalidArgument);

  ScoreRequest misaligned = MakeRequest(world, 1, 2, 2, &rng);
  misaligned.candidate_songs.pop_back();
  EXPECT_EQ(engine.Score(misaligned).status().code(),
            StatusCode::kInvalidArgument);

  ScoreRequest narrow = MakeRequest(world, 1, 2, 2, &rng);
  narrow.candidates[0].sparse.pop_back();
  EXPECT_EQ(engine.Score(narrow).status().code(),
            StatusCode::kInvalidArgument);

  engine.Stop();
  ScoreRequest after_stop = MakeRequest(world, 1, 2, 2, &rng);
  EXPECT_EQ(engine.Score(after_stop).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// Snapshot versioning and hot-swap.

TEST(EngineTest, ResponsesTagSnapshotVersionAcrossSwap) {
  const data::World world(SmallWorldConfig(), 17);
  Engine engine(BuildSnapshot(world, 27, /*version=*/70),
                ImmediateDispatch());
  Rng rng(11);
  const ScoreRequest request = MakeRequest(world, 2, 5, 3, &rng);

  const StatusOr<ScoreResponse> before = engine.Score(request);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().snapshot_version, 70u);

  telemetry::Counter* misses =
      telemetry::GetCounter("uae.serve.cache_misses");
  const int64_t misses_before = misses->Get();
  engine.Swap(BuildSnapshot(world, 28, /*version=*/71));
  const StatusOr<ScoreResponse> after = engine.Score(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().snapshot_version, 71u);
  // The cached hidden state was computed by snapshot 70, so the first
  // request after the swap must miss (lazy invalidation).
  EXPECT_EQ(misses->Get() - misses_before, 1);
}

// ---------------------------------------------------------------------
// Checkpoint loading and fingerprint validation.

TEST(SnapshotTest, LoadRoundTripsThroughCheckpoints) {
  const data::World world(SmallWorldConfig(), 18);
  Rng rng(30);
  models::ModelConfig model_config;
  std::unique_ptr<models::Recommender> model = models::CreateRecommender(
      models::ModelKind::kLr, &rng, world.schema(), model_config);
  attention::AttentionTower tower(&rng, world.schema(),
                                  attention::TowerConfig());

  const std::string model_path = testing::TempDir() + "/serve_model.ckpt";
  const std::string tower_path = testing::TempDir() + "/serve_tower.ckpt";
  ASSERT_TRUE(SaveRecommender(*model, models::ModelKind::kLr, model_config,
                              model_path)
                  .ok());
  const std::string tower_arch =
      attention::TowerArchConfig(attention::TowerConfig());
  ASSERT_TRUE(nn::SaveParameters(tower, tower_path, &tower_arch).ok());

  SnapshotSpec spec;
  spec.schema = world.schema();
  spec.kind = models::ModelKind::kLr;
  spec.model_config = model_config;
  spec.model_path = model_path;
  spec.tower_path = tower_path;
  const StatusOr<std::shared_ptr<const ModelSnapshot>> loaded =
      ModelSnapshot::Load(spec);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded.value()->tower(), nullptr);
  EXPECT_GT(loaded.value()->version(), 0u);
}

TEST(SnapshotTest, LoadRejectsArchitectureMismatch) {
  const data::World world(SmallWorldConfig(), 19);
  Rng rng(31);
  models::ModelConfig model_config;
  std::unique_ptr<models::Recommender> model = models::CreateRecommender(
      models::ModelKind::kLr, &rng, world.schema(), model_config);
  const std::string model_path = testing::TempDir() + "/serve_mismatch.ckpt";
  ASSERT_TRUE(SaveRecommender(*model, models::ModelKind::kLr, model_config,
                              model_path)
                  .ok());

  SnapshotSpec spec;
  spec.schema = world.schema();
  spec.kind = models::ModelKind::kLr;
  spec.model_config = model_config;
  spec.model_config.history_length += 1;  // Not the trained architecture.
  spec.model_path = model_path;
  const StatusOr<std::shared_ptr<const ModelSnapshot>> loaded =
      ModelSnapshot::Load(spec);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, LoadAcceptsFingerprintlessCheckpoints) {
  const data::World world(SmallWorldConfig(), 20);
  Rng rng(32);
  models::ModelConfig model_config;
  std::unique_ptr<models::Recommender> model = models::CreateRecommender(
      models::ModelKind::kLr, &rng, world.schema(), model_config);
  // Written without the fingerprint block, like pre-existing checkpoints.
  const std::string model_path = testing::TempDir() + "/serve_legacy.ckpt";
  ASSERT_TRUE(nn::SaveParameters(*model, model_path).ok());

  SnapshotSpec spec;
  spec.schema = world.schema();
  spec.kind = models::ModelKind::kLr;
  spec.model_config = model_config;
  spec.model_path = model_path;
  EXPECT_TRUE(ModelSnapshot::Load(spec).ok());
}

// ---------------------------------------------------------------------
// Replay driver smoke.

TEST(ReplayTest, ReportsClosedLoopAndCacheEffect) {
  ReplayConfig config;
  config.world = SmallWorldConfig();
  config.requests = 8;
  config.history_length = 10;
  config.candidates = 3;
  config.client_threads = 2;
  config.engine.max_wait_us = 0;
  const StatusOr<ReplayReport> report = RunReplay(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().closed_requests, 8);
  EXPECT_GT(report.value().snapshot_version, 0u);
  EXPECT_GT(report.value().cold_seconds, 0.0);
  EXPECT_GT(report.value().warm_seconds, 0.0);
  // Pass 1 misses every user, pass 2 hits every user.
  EXPECT_DOUBLE_EQ(report.value().cache_hit_rate, 0.5);
}

}  // namespace
}  // namespace uae::serve
