// Pool stress suite for common/parallel: shard-cover invariants, nested
// and reentrant loops, empty/uneven ranges, multi-thread hammering of the
// telemetry and trace subsystems from pool workers, and export-after-work
// ordering against the trace exporter. The bit-identity guarantees are in
// parallel_determinism_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace uae::parallel {
namespace {

/// Restores the configured thread count on scope exit so tests cannot
/// leak their overrides into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : prev_(NumThreads()) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(prev_); }

 private:
  int prev_;
};

TEST(ParallelShards, PartitioningIsExactAndThreadCountIndependent) {
  EXPECT_EQ(NumShards(0, 0, 4), 0);
  EXPECT_EQ(NumShards(5, 5, 1), 0);
  EXPECT_EQ(NumShards(0, 10, 3), 4);  // 3+3+3+1.
  EXPECT_EQ(NumShards(0, 12, 3), 4);
  EXPECT_EQ(NumShards(7, 8, 100), 1);
  for (int threads : {1, 2, 8}) {
    ScopedThreads scope(threads);
    EXPECT_EQ(NumShards(0, 10, 3), 4) << "partition must ignore threads";
  }
}

TEST(ParallelFor, CoversUnevenRangeExactlyOnce) {
  ScopedThreads scope(8);
  constexpr int64_t kN = 1237;  // Prime: every grain is uneven.
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(100, 100 + kN, 37, [&](int64_t b, int64_t e) {
    EXPECT_LT(b, e);
    for (int64_t i = b; i < e; ++i) {
      hits[i - 100].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ScopedThreads scope(8);
  int calls = 0;
  ParallelFor(3, 3, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(10, 2, 4, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForShard, ShardIndicesMatchStaticPartition) {
  ScopedThreads scope(4);
  std::mutex mu;
  std::set<std::vector<int64_t>> seen;
  ParallelForShard(0, 10, 4, [&](int64_t s, int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert({s, b, e});
  });
  const std::set<std::vector<int64_t>> expected = {
      {0, 0, 4}, {1, 4, 8}, {2, 8, 10}};
  EXPECT_EQ(seen, expected);
}

TEST(ParallelFor, NestedLoopDegradesToSerialWithoutDeadlock) {
  ScopedThreads scope(8);
  ASSERT_FALSE(InParallelRegion());
  std::atomic<int64_t> total{0};
  ParallelFor(0, 16, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      EXPECT_TRUE(InParallelRegion());
      // Inner loop must run inline on this thread and still cover its
      // range exactly.
      int64_t inner = 0;
      ParallelFor(0, 100, 7, [&](int64_t b, int64_t e) {
        EXPECT_TRUE(InParallelRegion());
        inner += e - b;
      });
      EXPECT_EQ(inner, 100);
      total.fetch_add(inner, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(total.load(), 1600);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelFor, SingleShardLoopDoesNotEnterRegion) {
  ScopedThreads scope(8);
  bool inner_saw_region = true;
  // One shard = no parallelism at this level; an inner loop must still be
  // free to use the pool.
  ParallelFor(0, 10, 100, [&](int64_t, int64_t) {
    inner_saw_region = InParallelRegion();
  });
  EXPECT_FALSE(inner_saw_region);
}

TEST(ParallelFor, SerialThreadCountNeverTouchesPool) {
  ScopedThreads scope(1);
  std::set<std::thread::id> tids;
  ParallelFor(0, 1000, 10, [&](int64_t, int64_t) {
    tids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(tids.size(), 1u);
  EXPECT_EQ(*tids.begin(), std::this_thread::get_id());
}

TEST(ParallelReduce, OrderedMergeMatchesSerialSum) {
  // Float accumulation order is fixed by the shard partition, so the
  // reduce is bit-identical across thread counts.
  auto sum_at = [&](int threads) {
    ScopedThreads scope(threads);
    return ParallelReduce<float>(
        0, 100000, 1024, 0.0f,
        [](int64_t b, int64_t e) {
          float s = 0.0f;
          for (int64_t i = b; i < e; ++i) {
            s += 1.0f / static_cast<float>(i + 1);
          }
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  const float at1 = sum_at(1);
  const float at2 = sum_at(2);
  const float at8 = sum_at(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ScopedThreads scope(4);
  const int v = ParallelReduce<int>(
      5, 5, 3, 42, [](int64_t, int64_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 42);
}

TEST(ParallelStress, EightThreadsHammerTelemetryCounters) {
  ScopedThreads scope(8);
  telemetry::Counter* counter =
      telemetry::GetCounter("uae.test.parallel.hammer");
  counter->Reset();
  constexpr int kRounds = 50;
  constexpr int64_t kAddsPerRound = 2000;
  for (int round = 0; round < kRounds; ++round) {
    ParallelFor(0, kAddsPerRound, 17, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) counter->Add();
    });
  }
  EXPECT_EQ(counter->Get(), kRounds * kAddsPerRound);
}

TEST(ParallelStress, HistogramRecordsFromWorkersAreLossless) {
  ScopedThreads scope(8);
  telemetry::Histogram* histogram = telemetry::GetHistogram(
      "uae.test.parallel.hammer_hist", {1.0, 2.0, 4.0});
  histogram->Reset();
  ParallelFor(0, 10000, 31, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      histogram->Record(static_cast<double>(i % 5));
    }
  });
  EXPECT_EQ(histogram->Snapshot().count, 10000);
}

TEST(ParallelStress, ConcurrentTopLevelLoopsBothComplete) {
  // The pool serves one loop at a time; a second concurrent top-level
  // loop must fall back to inline execution, not deadlock or starve.
  ScopedThreads scope(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      ParallelFor(0, 500, 9, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 500);
}

TEST(ParallelTrace, WorkerShardsLandOnExportedTimelines) {
  // Trace spans emitted from pool workers must survive until an export
  // that happens after the loop — the exporter walks leaked per-thread
  // rings, and pool workers are parked, not joined (teardown ordering).
  ScopedThreads scope(8);
  const std::string path =
      (std::filesystem::temp_directory_path() / "uae_parallel_trace.json")
          .string();
  ASSERT_TRUE(trace::Start(path));
  ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      trace::Span span("test.parallel.work", "i", i);
    }
  });
  ASSERT_TRUE(trace::Stop());

  const StatusOr<json::Value> parsed = json::ParseFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int work_spans = 0;
  int shard_spans = 0;
  std::set<int64_t> tids;
  for (const json::Value& event : events->array) {
    const std::string name = event.GetString("name");
    if (name == "test.parallel.work") {
      ++work_spans;
      tids.insert(static_cast<int64_t>(event.GetNumber("tid")));
    }
    if (name == "parallel.shard") ++shard_spans;
  }
  std::remove(path.c_str());
  EXPECT_EQ(work_spans, 64);
  EXPECT_EQ(shard_spans, 64);
  // 8 configured threads on any machine means real worker threads exist;
  // at least the caller recorded, and every recording tid is valid (>0).
  EXPECT_GE(tids.size(), 1u);
  for (int64_t tid : tids) EXPECT_GT(tid, 0);
}

TEST(ParallelConfig, SetNumThreadsClampsAndSticks) {
  const int prev = NumThreads();
  SetNumThreads(-3);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(6);
  EXPECT_EQ(NumThreads(), 6);
  SetNumThreads(prev);
}

TEST(ParallelStress, RepeatedLoopsReusePoolWithoutLeakingWork) {
  ScopedThreads scope(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 64, 3, [&](int64_t b, int64_t e) {
      sum.fetch_add(e - b, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64) << "round " << round;
  }
}

}  // namespace
}  // namespace uae::parallel
