file(REMOVE_RECURSE
  "CMakeFiles/uae_nn.dir/nn/grad_check.cc.o"
  "CMakeFiles/uae_nn.dir/nn/grad_check.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/gru.cc.o"
  "CMakeFiles/uae_nn.dir/nn/gru.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/init.cc.o"
  "CMakeFiles/uae_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/layers.cc.o"
  "CMakeFiles/uae_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/node.cc.o"
  "CMakeFiles/uae_nn.dir/nn/node.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/ops.cc.o"
  "CMakeFiles/uae_nn.dir/nn/ops.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/uae_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/uae_nn.dir/nn/serialize.cc.o.d"
  "CMakeFiles/uae_nn.dir/nn/tensor.cc.o"
  "CMakeFiles/uae_nn.dir/nn/tensor.cc.o.d"
  "libuae_nn.a"
  "libuae_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
