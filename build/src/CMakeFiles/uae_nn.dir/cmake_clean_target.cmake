file(REMOVE_RECURSE
  "libuae_nn.a"
)
