# Empty compiler generated dependencies file for uae_nn.
# This may be replaced when dependencies are built.
