file(REMOVE_RECURSE
  "CMakeFiles/uae_sim.dir/sim/ab_test.cc.o"
  "CMakeFiles/uae_sim.dir/sim/ab_test.cc.o.d"
  "libuae_sim.a"
  "libuae_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
