file(REMOVE_RECURSE
  "libuae_sim.a"
)
