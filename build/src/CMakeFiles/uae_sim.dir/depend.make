# Empty dependencies file for uae_sim.
# This may be replaced when dependencies are built.
