# Empty compiler generated dependencies file for uae_models.
# This may be replaced when dependencies are built.
