
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/autoint.cc" "src/CMakeFiles/uae_models.dir/models/autoint.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/autoint.cc.o.d"
  "/root/repo/src/models/dcn.cc" "src/CMakeFiles/uae_models.dir/models/dcn.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/dcn.cc.o.d"
  "/root/repo/src/models/dcn_v2.cc" "src/CMakeFiles/uae_models.dir/models/dcn_v2.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/dcn_v2.cc.o.d"
  "/root/repo/src/models/deepfm.cc" "src/CMakeFiles/uae_models.dir/models/deepfm.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/deepfm.cc.o.d"
  "/root/repo/src/models/extra_models.cc" "src/CMakeFiles/uae_models.dir/models/extra_models.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/extra_models.cc.o.d"
  "/root/repo/src/models/features.cc" "src/CMakeFiles/uae_models.dir/models/features.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/features.cc.o.d"
  "/root/repo/src/models/fm.cc" "src/CMakeFiles/uae_models.dir/models/fm.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/fm.cc.o.d"
  "/root/repo/src/models/registry.cc" "src/CMakeFiles/uae_models.dir/models/registry.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/registry.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/CMakeFiles/uae_models.dir/models/trainer.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/trainer.cc.o.d"
  "/root/repo/src/models/wide_deep.cc" "src/CMakeFiles/uae_models.dir/models/wide_deep.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/wide_deep.cc.o.d"
  "/root/repo/src/models/youtube_net.cc" "src/CMakeFiles/uae_models.dir/models/youtube_net.cc.o" "gcc" "src/CMakeFiles/uae_models.dir/models/youtube_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uae_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
