file(REMOVE_RECURSE
  "libuae_models.a"
)
