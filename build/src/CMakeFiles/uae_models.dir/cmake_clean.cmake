file(REMOVE_RECURSE
  "CMakeFiles/uae_models.dir/models/autoint.cc.o"
  "CMakeFiles/uae_models.dir/models/autoint.cc.o.d"
  "CMakeFiles/uae_models.dir/models/dcn.cc.o"
  "CMakeFiles/uae_models.dir/models/dcn.cc.o.d"
  "CMakeFiles/uae_models.dir/models/dcn_v2.cc.o"
  "CMakeFiles/uae_models.dir/models/dcn_v2.cc.o.d"
  "CMakeFiles/uae_models.dir/models/deepfm.cc.o"
  "CMakeFiles/uae_models.dir/models/deepfm.cc.o.d"
  "CMakeFiles/uae_models.dir/models/extra_models.cc.o"
  "CMakeFiles/uae_models.dir/models/extra_models.cc.o.d"
  "CMakeFiles/uae_models.dir/models/features.cc.o"
  "CMakeFiles/uae_models.dir/models/features.cc.o.d"
  "CMakeFiles/uae_models.dir/models/fm.cc.o"
  "CMakeFiles/uae_models.dir/models/fm.cc.o.d"
  "CMakeFiles/uae_models.dir/models/registry.cc.o"
  "CMakeFiles/uae_models.dir/models/registry.cc.o.d"
  "CMakeFiles/uae_models.dir/models/trainer.cc.o"
  "CMakeFiles/uae_models.dir/models/trainer.cc.o.d"
  "CMakeFiles/uae_models.dir/models/wide_deep.cc.o"
  "CMakeFiles/uae_models.dir/models/wide_deep.cc.o.d"
  "CMakeFiles/uae_models.dir/models/youtube_net.cc.o"
  "CMakeFiles/uae_models.dir/models/youtube_net.cc.o.d"
  "libuae_models.a"
  "libuae_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
