file(REMOVE_RECURSE
  "libuae_data.a"
)
