
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/batcher.cc" "src/CMakeFiles/uae_data.dir/data/batcher.cc.o" "gcc" "src/CMakeFiles/uae_data.dir/data/batcher.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/uae_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/uae_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/feedback_stats.cc" "src/CMakeFiles/uae_data.dir/data/feedback_stats.cc.o" "gcc" "src/CMakeFiles/uae_data.dir/data/feedback_stats.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/uae_data.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/uae_data.dir/data/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/uae_data.dir/data/io.cc.o" "gcc" "src/CMakeFiles/uae_data.dir/data/io.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/uae_data.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/uae_data.dir/data/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
