file(REMOVE_RECURSE
  "CMakeFiles/uae_data.dir/data/batcher.cc.o"
  "CMakeFiles/uae_data.dir/data/batcher.cc.o.d"
  "CMakeFiles/uae_data.dir/data/dataset.cc.o"
  "CMakeFiles/uae_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/uae_data.dir/data/feedback_stats.cc.o"
  "CMakeFiles/uae_data.dir/data/feedback_stats.cc.o.d"
  "CMakeFiles/uae_data.dir/data/generator.cc.o"
  "CMakeFiles/uae_data.dir/data/generator.cc.o.d"
  "CMakeFiles/uae_data.dir/data/io.cc.o"
  "CMakeFiles/uae_data.dir/data/io.cc.o.d"
  "CMakeFiles/uae_data.dir/data/schema.cc.o"
  "CMakeFiles/uae_data.dir/data/schema.cc.o.d"
  "libuae_data.a"
  "libuae_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
