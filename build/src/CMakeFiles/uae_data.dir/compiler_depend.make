# Empty compiler generated dependencies file for uae_data.
# This may be replaced when dependencies are built.
