# Empty dependencies file for uae_core.
# This may be replaced when dependencies are built.
