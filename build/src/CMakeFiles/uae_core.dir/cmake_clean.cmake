file(REMOVE_RECURSE
  "CMakeFiles/uae_core.dir/core/experiment.cc.o"
  "CMakeFiles/uae_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/uae_core.dir/core/pipeline.cc.o"
  "CMakeFiles/uae_core.dir/core/pipeline.cc.o.d"
  "libuae_core.a"
  "libuae_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
