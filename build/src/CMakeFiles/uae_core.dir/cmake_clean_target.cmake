file(REMOVE_RECURSE
  "libuae_core.a"
)
