file(REMOVE_RECURSE
  "CMakeFiles/uae_attention.dir/attention/attention_estimator.cc.o"
  "CMakeFiles/uae_attention.dir/attention/attention_estimator.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/edm.cc.o"
  "CMakeFiles/uae_attention.dir/attention/edm.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/oracle.cc.o"
  "CMakeFiles/uae_attention.dir/attention/oracle.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/pn_ndb.cc.o"
  "CMakeFiles/uae_attention.dir/attention/pn_ndb.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/reweight.cc.o"
  "CMakeFiles/uae_attention.dir/attention/reweight.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/risks.cc.o"
  "CMakeFiles/uae_attention.dir/attention/risks.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/sar.cc.o"
  "CMakeFiles/uae_attention.dir/attention/sar.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/towers.cc.o"
  "CMakeFiles/uae_attention.dir/attention/towers.cc.o.d"
  "CMakeFiles/uae_attention.dir/attention/uae_model.cc.o"
  "CMakeFiles/uae_attention.dir/attention/uae_model.cc.o.d"
  "libuae_attention.a"
  "libuae_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
