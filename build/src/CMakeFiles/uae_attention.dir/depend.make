# Empty dependencies file for uae_attention.
# This may be replaced when dependencies are built.
