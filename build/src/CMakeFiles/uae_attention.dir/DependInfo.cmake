
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attention/attention_estimator.cc" "src/CMakeFiles/uae_attention.dir/attention/attention_estimator.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/attention_estimator.cc.o.d"
  "/root/repo/src/attention/edm.cc" "src/CMakeFiles/uae_attention.dir/attention/edm.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/edm.cc.o.d"
  "/root/repo/src/attention/oracle.cc" "src/CMakeFiles/uae_attention.dir/attention/oracle.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/oracle.cc.o.d"
  "/root/repo/src/attention/pn_ndb.cc" "src/CMakeFiles/uae_attention.dir/attention/pn_ndb.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/pn_ndb.cc.o.d"
  "/root/repo/src/attention/reweight.cc" "src/CMakeFiles/uae_attention.dir/attention/reweight.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/reweight.cc.o.d"
  "/root/repo/src/attention/risks.cc" "src/CMakeFiles/uae_attention.dir/attention/risks.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/risks.cc.o.d"
  "/root/repo/src/attention/sar.cc" "src/CMakeFiles/uae_attention.dir/attention/sar.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/sar.cc.o.d"
  "/root/repo/src/attention/towers.cc" "src/CMakeFiles/uae_attention.dir/attention/towers.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/towers.cc.o.d"
  "/root/repo/src/attention/uae_model.cc" "src/CMakeFiles/uae_attention.dir/attention/uae_model.cc.o" "gcc" "src/CMakeFiles/uae_attention.dir/attention/uae_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uae_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
