file(REMOVE_RECURSE
  "libuae_attention.a"
)
