# Empty compiler generated dependencies file for uae_eval.
# This may be replaced when dependencies are built.
