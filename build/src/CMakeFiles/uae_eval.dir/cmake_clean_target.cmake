file(REMOVE_RECURSE
  "libuae_eval.a"
)
