file(REMOVE_RECURSE
  "CMakeFiles/uae_eval.dir/eval/attention_metrics.cc.o"
  "CMakeFiles/uae_eval.dir/eval/attention_metrics.cc.o.d"
  "CMakeFiles/uae_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/uae_eval.dir/eval/metrics.cc.o.d"
  "libuae_eval.a"
  "libuae_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
