file(REMOVE_RECURSE
  "libuae_common.a"
)
