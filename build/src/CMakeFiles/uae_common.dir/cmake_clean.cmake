file(REMOVE_RECURSE
  "CMakeFiles/uae_common.dir/common/csv.cc.o"
  "CMakeFiles/uae_common.dir/common/csv.cc.o.d"
  "CMakeFiles/uae_common.dir/common/logging.cc.o"
  "CMakeFiles/uae_common.dir/common/logging.cc.o.d"
  "CMakeFiles/uae_common.dir/common/rng.cc.o"
  "CMakeFiles/uae_common.dir/common/rng.cc.o.d"
  "CMakeFiles/uae_common.dir/common/stats.cc.o"
  "CMakeFiles/uae_common.dir/common/stats.cc.o.d"
  "CMakeFiles/uae_common.dir/common/status.cc.o"
  "CMakeFiles/uae_common.dir/common/status.cc.o.d"
  "CMakeFiles/uae_common.dir/common/table.cc.o"
  "CMakeFiles/uae_common.dir/common/table.cc.o.d"
  "libuae_common.a"
  "libuae_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uae_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
