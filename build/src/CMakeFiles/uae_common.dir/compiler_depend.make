# Empty compiler generated dependencies file for uae_common.
# This may be replaced when dependencies are built.
