file(REMOVE_RECURSE
  "CMakeFiles/import_log.dir/import_log.cpp.o"
  "CMakeFiles/import_log.dir/import_log.cpp.o.d"
  "import_log"
  "import_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/import_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
