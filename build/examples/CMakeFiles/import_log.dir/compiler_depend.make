# Empty compiler generated dependencies file for import_log.
# This may be replaced when dependencies are built.
