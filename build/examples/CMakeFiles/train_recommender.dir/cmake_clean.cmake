file(REMOVE_RECURSE
  "CMakeFiles/train_recommender.dir/train_recommender.cpp.o"
  "CMakeFiles/train_recommender.dir/train_recommender.cpp.o.d"
  "train_recommender"
  "train_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
