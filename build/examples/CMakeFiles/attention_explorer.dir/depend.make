# Empty dependencies file for attention_explorer.
# This may be replaced when dependencies are built.
