file(REMOVE_RECURSE
  "CMakeFiles/attention_explorer.dir/attention_explorer.cpp.o"
  "CMakeFiles/attention_explorer.dir/attention_explorer.cpp.o.d"
  "attention_explorer"
  "attention_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
