file(REMOVE_RECURSE
  "CMakeFiles/analysis_attention_quality.dir/analysis_attention_quality.cpp.o"
  "CMakeFiles/analysis_attention_quality.dir/analysis_attention_quality.cpp.o.d"
  "analysis_attention_quality"
  "analysis_attention_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_attention_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
