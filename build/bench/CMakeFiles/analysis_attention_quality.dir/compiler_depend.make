# Empty compiler generated dependencies file for analysis_attention_quality.
# This may be replaced when dependencies are built.
