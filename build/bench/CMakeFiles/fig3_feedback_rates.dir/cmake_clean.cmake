file(REMOVE_RECURSE
  "CMakeFiles/fig3_feedback_rates.dir/fig3_feedback_rates.cpp.o"
  "CMakeFiles/fig3_feedback_rates.dir/fig3_feedback_rates.cpp.o.d"
  "fig3_feedback_rates"
  "fig3_feedback_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_feedback_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
