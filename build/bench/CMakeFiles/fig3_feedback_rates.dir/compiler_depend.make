# Empty compiler generated dependencies file for fig3_feedback_rates.
# This may be replaced when dependencies are built.
