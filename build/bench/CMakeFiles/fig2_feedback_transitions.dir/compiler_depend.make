# Empty compiler generated dependencies file for fig2_feedback_transitions.
# This may be replaced when dependencies are built.
