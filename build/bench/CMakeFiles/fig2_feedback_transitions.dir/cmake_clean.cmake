file(REMOVE_RECURSE
  "CMakeFiles/fig2_feedback_transitions.dir/fig2_feedback_transitions.cpp.o"
  "CMakeFiles/fig2_feedback_transitions.dir/fig2_feedback_transitions.cpp.o.d"
  "fig2_feedback_transitions"
  "fig2_feedback_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_feedback_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
