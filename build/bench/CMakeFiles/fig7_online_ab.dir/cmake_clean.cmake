file(REMOVE_RECURSE
  "CMakeFiles/fig7_online_ab.dir/fig7_online_ab.cpp.o"
  "CMakeFiles/fig7_online_ab.dir/fig7_online_ab.cpp.o.d"
  "fig7_online_ab"
  "fig7_online_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_online_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
