# Empty dependencies file for fig7_online_ab.
# This may be replaced when dependencies are built.
