# Empty dependencies file for fig6_gamma_sweep.
# This may be replaced when dependencies are built.
