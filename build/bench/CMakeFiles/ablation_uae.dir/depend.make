# Empty dependencies file for ablation_uae.
# This may be replaced when dependencies are built.
