file(REMOVE_RECURSE
  "CMakeFiles/ablation_uae.dir/ablation_uae.cpp.o"
  "CMakeFiles/ablation_uae.dir/ablation_uae.cpp.o.d"
  "ablation_uae"
  "ablation_uae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
