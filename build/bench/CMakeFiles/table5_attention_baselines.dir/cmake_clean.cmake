file(REMOVE_RECURSE
  "CMakeFiles/table5_attention_baselines.dir/table5_attention_baselines.cpp.o"
  "CMakeFiles/table5_attention_baselines.dir/table5_attention_baselines.cpp.o.d"
  "table5_attention_baselines"
  "table5_attention_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_attention_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
