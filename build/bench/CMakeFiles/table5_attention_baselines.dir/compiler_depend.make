# Empty compiler generated dependencies file for table5_attention_baselines.
# This may be replaced when dependencies are built.
