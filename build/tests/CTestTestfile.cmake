# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_ops_test[1]_include.cmake")
include("/root/repo/build/tests/nn_grad_check_test[1]_include.cmake")
include("/root/repo/build/tests/nn_training_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/feedback_stats_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/attention_test[1]_include.cmake")
include("/root/repo/build/tests/risks_test[1]_include.cmake")
include("/root/repo/build/tests/towers_test[1]_include.cmake")
include("/root/repo/build/tests/attention_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/theorems_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
