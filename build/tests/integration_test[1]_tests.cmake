add_test([=[PipelineIntegration.PnCollapsesAndUaeDoesNot]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=PipelineIntegration.PnCollapsesAndUaeDoesNot]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PipelineIntegration.PnCollapsesAndUaeDoesNot]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS PipelineIntegration.PnCollapsesAndUaeDoesNot)
