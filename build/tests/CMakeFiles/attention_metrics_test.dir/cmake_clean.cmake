file(REMOVE_RECURSE
  "CMakeFiles/attention_metrics_test.dir/attention_metrics_test.cc.o"
  "CMakeFiles/attention_metrics_test.dir/attention_metrics_test.cc.o.d"
  "attention_metrics_test"
  "attention_metrics_test.pdb"
  "attention_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
