# Empty compiler generated dependencies file for attention_metrics_test.
# This may be replaced when dependencies are built.
