file(REMOVE_RECURSE
  "CMakeFiles/towers_test.dir/towers_test.cc.o"
  "CMakeFiles/towers_test.dir/towers_test.cc.o.d"
  "towers_test"
  "towers_test.pdb"
  "towers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/towers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
