file(REMOVE_RECURSE
  "CMakeFiles/feedback_stats_test.dir/feedback_stats_test.cc.o"
  "CMakeFiles/feedback_stats_test.dir/feedback_stats_test.cc.o.d"
  "feedback_stats_test"
  "feedback_stats_test.pdb"
  "feedback_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
