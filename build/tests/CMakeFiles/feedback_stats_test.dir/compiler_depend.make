# Empty compiler generated dependencies file for feedback_stats_test.
# This may be replaced when dependencies are built.
