file(REMOVE_RECURSE
  "CMakeFiles/risks_test.dir/risks_test.cc.o"
  "CMakeFiles/risks_test.dir/risks_test.cc.o.d"
  "risks_test"
  "risks_test.pdb"
  "risks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
