# Empty dependencies file for risks_test.
# This may be replaced when dependencies are built.
