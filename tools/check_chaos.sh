#!/usr/bin/env bash
# Builds the tree under AddressSanitizer and runs the chaos-labeled test
# subset against it: the serve-path fault drills (corrupt snapshot
# loads, cache eviction storms, injected latency spikes), the golden
# auto-rollback scenario — a canary rollout of a bad snapshot must roll
# back with zero failed requests and bit-equal post-rollback scores at
# 1 and 8 threads — and the continuous-learning drills: poisoned
# fine-tunes (grad.nan), torn candidate writes (ckpt.write), a
# saturated candidate caught by the rollout's drift gate, and a cycle
# killed mid-train resuming to a bit-identical candidate.
#
# ASan is the right runtime here: chaos paths exercise error cleanup
# (partially-built snapshots, abandoned batches, re-published
# incumbents), which is exactly where lifetime bugs hide. The TSan
# schedule drills live in tools/check_tsan.sh; the two runtimes cannot
# coexist, so this uses a dedicated build-chaos/ tree.
#
# Usage: tools/check_chaos.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-chaos"

cmake -S "$repo" -B "$build" -DUAE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j"$(nproc)" --target serve_chaos_test \
  learn_chaos_test

# detect_leaks catches snapshots or pending batches dropped on the
# error paths the faults force open.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 halt_on_error=1}"

cd "$build"
ctest -L chaos --output-on-failure "$@"
echo "Chaos serve subset: clean"
