// uae_top: live ops dashboard over a Prometheus metrics export.
//
//   uae_top [--file PATH] [--interval-ms N] [--iterations N]
//   uae_top --once [--json] [--file PATH]
//
// Tails the text-exposition file a serving process keeps fresh (via
// UAE_METRICS_EXPORT_PATH or uae_serve_replay --export-metrics) and
// renders a refreshing terminal dashboard: lifetime + interval QPS,
// shed breakdown by reason, latency quantiles per stage, SLO error
// budget, rollout/breaker state, session-cache traffic. The file is
// replaced atomically by the exporter, so a read never sees a torn
// export — uae_top is a pure observer with no connection to the
// serving process beyond the file.
//
//   --file PATH       export file (default $UAE_METRICS_EXPORT_PATH)
//   --interval-ms N   refresh period                          (1000)
//   --iterations N    stop after N refreshes (0 = until ^C)   (0)
//   --once            read once, print, exit
//   --json            with --once: machine-readable summary on stdout
//
// Exit codes: 0 ok, 1 cannot read/parse the export, 2 usage error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "common/telemetry_export.h"

namespace {

using uae::Status;
using uae::StatusOr;
using uae::telemetry::PromSample;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return text;
}

/// Unlabeled samples by name; labeled ones (histogram buckets) are
/// summarized separately where needed.
struct Export {
  std::map<std::string, double> values;
  std::string build;

  double Get(const std::string& name, double fallback = 0.0) const {
    const auto it = values.find(name);
    return it != values.end() ? it->second : fallback;
  }
  bool Has(const std::string& name) const {
    return values.count(name) > 0;
  }
};

Export Index(const std::vector<PromSample>& samples) {
  Export exported;
  for (const PromSample& sample : samples) {
    if (sample.name == "uae_build_info") {
      exported.build = sample.Label("git");
      continue;
    }
    if (sample.labels.empty()) exported.values[sample.name] = sample.value;
  }
  return exported;
}

const char* RolloutStageName(double stage) {
  switch (static_cast<int>(stage)) {
    case 0: return "idle";
    case 1: return "canary";
    case 2: return "ramp";
    case 3: return "full";
    case 4: return "rolled_back";
  }
  return "unknown";
}

const char* FleetStageName(double stage) {
  switch (static_cast<int>(stage)) {
    case 0: return "idle";
    case 1: return "upgrading";
    case 2: return "rolled_back";
  }
  return "unknown";
}

const char* LearnStateName(double state) {
  switch (static_cast<int>(state)) {
    case 0: return "idle";
    case 1: return "ingest";
    case 2: return "train";
    case 3: return "publish";
  }
  return "unknown";
}

const char* BreakerStateName(double state) {
  switch (static_cast<int>(state)) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half_open";
  }
  return "unknown";
}

/// Everything the dashboard / JSON mode reports, derived from one read.
struct Summary {
  double uptime_s = 0.0;
  double requests = 0.0;
  double qps_lifetime = 0.0;
  double shed_total = 0.0;
  double shed_deadline = 0.0;
  double shed_queue_full = 0.0;
  double shed_breaker = 0.0;
  double shed_draining = 0.0;
  double degraded = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  double score_p95_ms = 0.0;
  double queue_depth = 0.0;
  double in_flight = 0.0;
  double snapshot_version = 0.0;
  double candidate_version = 0.0;
  double rollout_stage = 0.0;
  double rollout_healthy = 1.0;
  double breaker_state = 0.0;
  double cache_hits = 0.0, cache_misses = 0.0, cache_evictions = 0.0;
  double exemplars = 0.0;
  bool has_slo = false;
  double slo_budget_consumed = 0.0;
  double slo_budget_remaining = 0.0;
  double slo_advisory_burn = 0.0;
  // Sharded serving (DESIGN.md §15): present when a ShardRouter exported
  // uae_serve_router_shards > 1.
  struct ShardRow {
    double requests = 0.0;
    double ok = 0.0;
    double shed = 0.0;
    double errors = 0.0;
  };
  bool has_shards = false;
  std::vector<ShardRow> shards;
  double fleet_stage = 0.0;
  double fleet_upgraded = 0.0;
  double fleet_rollbacks = 0.0;
  double wire_frames = 0.0;
  double wire_bytes_tx = 0.0;
  double wire_bytes_rx = 0.0;
  double wire_rejects = 0.0;
  bool has_drift = false;
  double drift_samples = 0.0;
  double drift_windows = 0.0;
  double drift_flags = 0.0;
  double drift_flagged = 0.0;
  double drift_score = 0.0;
  double drift_advisories = 0.0;
  // Continuous learning (DESIGN.md §16): present when a LearnLoop
  // exported uae_learn_cycles.
  bool has_learn = false;
  double learn_state = 0.0;
  double learn_cycles = 0.0;
  double learn_cycles_failed = 0.0;
  double learn_cycles_skipped = 0.0;
  double learn_records_trained = 0.0;
  double learn_feedback_records = 0.0;
  double learn_bad_frames = 0.0;
  double learn_candidate_version = 0.0;
  double learn_advisory_seq = 0.0;
  std::string build;
};

Summary Summarize(const Export& e) {
  Summary s;
  s.build = e.build;
  s.uptime_s = e.Get("uae_export_uptime_seconds");
  s.requests = e.Get("uae_serve_requests");
  s.qps_lifetime = s.uptime_s > 0.0 ? s.requests / s.uptime_s : 0.0;
  s.shed_total = e.Get("uae_serve_shed");
  s.shed_deadline = e.Get("uae_serve_shed_deadline");
  s.shed_queue_full = e.Get("uae_serve_shed_queue_full");
  s.shed_breaker = e.Get("uae_serve_shed_breaker_open");
  s.shed_draining = e.Get("uae_serve_shed_draining");
  s.degraded = e.Get("uae_serve_degraded");
  s.p50_ms = 1e3 * e.Get("uae_serve_request_s_p50");
  s.p95_ms = 1e3 * e.Get("uae_serve_request_s_p95");
  s.p99_ms = 1e3 * e.Get("uae_serve_request_s_p99");
  s.queue_wait_p95_ms = 1e3 * e.Get("uae_serve_queue_wait_s_p95");
  s.score_p95_ms = 1e3 * e.Get("uae_serve_score_s_p95");
  s.queue_depth = e.Get("uae_serve_queue_depth");
  s.in_flight = e.Get("uae_serve_in_flight");
  s.snapshot_version = e.Get("uae_serve_snapshot_version");
  s.candidate_version = e.Get("uae_serve_rollout_candidate_version");
  s.rollout_stage = e.Get("uae_serve_rollout_stage");
  s.rollout_healthy = e.Get("uae_serve_rollout_healthy", 1.0);
  s.breaker_state = e.Get("uae_serve_breaker_state");
  s.cache_hits = e.Get("uae_serve_cache_hits");
  s.cache_misses = e.Get("uae_serve_cache_misses");
  s.cache_evictions = e.Get("uae_serve_cache_evictions");
  s.exemplars = e.Get("uae_serve_exemplars");
  s.has_slo = e.Has("uae_serve_slo_budget_consumed");
  s.slo_budget_consumed = e.Get("uae_serve_slo_budget_consumed");
  s.slo_budget_remaining = e.Get("uae_serve_slo_budget_remaining");
  s.slo_advisory_burn = e.Get("uae_serve_slo_advisory_burn");
  s.has_shards = e.Get("uae_serve_router_shards") > 1.0;
  if (s.has_shards) {
    for (int shard = 0;; ++shard) {
      const std::string prefix =
          "uae_serve_shard_" + std::to_string(shard) + "_";
      if (!e.Has(prefix + "requests")) break;
      Summary::ShardRow row;
      row.requests = e.Get(prefix + "requests");
      row.ok = e.Get(prefix + "ok");
      row.shed = e.Get(prefix + "shed");
      row.errors = e.Get(prefix + "errors");
      s.shards.push_back(row);
    }
    s.fleet_stage = e.Get("uae_serve_fleet_stage");
    s.fleet_upgraded = e.Get("uae_serve_fleet_upgraded");
    s.fleet_rollbacks = e.Get("uae_serve_fleet_rollbacks");
    s.wire_frames = e.Get("uae_serve_wire_frames");
    s.wire_bytes_tx = e.Get("uae_serve_wire_bytes_tx");
    s.wire_bytes_rx = e.Get("uae_serve_wire_bytes_rx");
    s.wire_rejects = e.Get("uae_serve_wire_rejects");
  }
  s.has_drift = e.Has("uae_serve_drift_windows");
  s.drift_samples = e.Get("uae_serve_drift_samples");
  s.drift_windows = e.Get("uae_serve_drift_windows");
  s.drift_flags = e.Get("uae_serve_drift_flags");
  s.drift_flagged = e.Get("uae_serve_drift_flagged");
  s.drift_score = e.Get("uae_serve_drift_score");
  s.drift_advisories = e.Get("uae_serve_drift_advisories");
  s.has_learn = e.Has("uae_learn_cycles");
  if (s.has_learn) {
    s.learn_state = e.Get("uae_learn_state");
    s.learn_cycles = e.Get("uae_learn_cycles");
    s.learn_cycles_failed = e.Get("uae_learn_cycles_failed");
    s.learn_cycles_skipped = e.Get("uae_learn_cycles_skipped");
    s.learn_records_trained = e.Get("uae_learn_records_trained");
    s.learn_feedback_records = e.Get("uae_learn_feedback_records");
    s.learn_bad_frames = e.Get("uae_learn_ingest_bad_frames");
    s.learn_candidate_version = e.Get("uae_learn_candidate_version");
    s.learn_advisory_seq = e.Get("uae_learn_advisory_seq", -1.0);
  }
  return s;
}

std::string ToJson(const Summary& s) {
  using uae::telemetry::JsonObject;
  JsonObject shed;
  shed.Set("total", s.shed_total)
      .Set("deadline", s.shed_deadline)
      .Set("queue_full", s.shed_queue_full)
      .Set("breaker_open", s.shed_breaker)
      .Set("draining", s.shed_draining);
  JsonObject latency;
  latency.Set("p50", s.p50_ms).Set("p95", s.p95_ms).Set("p99", s.p99_ms)
      .Set("queue_wait_p95", s.queue_wait_p95_ms)
      .Set("score_p95", s.score_p95_ms);
  JsonObject versions;
  versions.Set("published", static_cast<int64_t>(s.snapshot_version))
      .Set("candidate", static_cast<int64_t>(s.candidate_version))
      .Set("rollout_stage", RolloutStageName(s.rollout_stage))
      .Set("healthy", s.rollout_healthy > 0.5)
      .Set("breaker", BreakerStateName(s.breaker_state));
  const double lookups = s.cache_hits + s.cache_misses;
  JsonObject cache;
  cache.Set("hits", s.cache_hits)
      .Set("misses", s.cache_misses)
      .Set("evictions", s.cache_evictions)
      .Set("hit_rate", lookups > 0.0 ? s.cache_hits / lookups : 0.0);
  JsonObject summary;
  summary.Set("uptime_s", s.uptime_s)
      .Set("requests", s.requests)
      .Set("qps", s.qps_lifetime)
      .Set("degraded", s.degraded)
      .Set("exemplars", s.exemplars)
      .Set("queue_depth", s.queue_depth)
      .Set("in_flight", s.in_flight)
      .Set("build", s.build)
      .SetRaw("shed", shed.Str())
      .SetRaw("latency_ms", latency.Str())
      .SetRaw("versions", versions.Str())
      .SetRaw("cache", cache.Str());
  if (s.has_slo) {
    JsonObject slo;
    slo.Set("budget_consumed", s.slo_budget_consumed)
        .Set("budget_remaining", s.slo_budget_remaining)
        .Set("advisory_burn", s.slo_advisory_burn);
    summary.SetRaw("slo", slo.Str());
  }
  if (s.has_drift) {
    JsonObject drift;
    drift.Set("samples", s.drift_samples)
        .Set("windows", s.drift_windows)
        .Set("flags", s.drift_flags)
        .Set("flagged", s.drift_flagged > 0.5)
        .Set("score", s.drift_score)
        .Set("advisories", s.drift_advisories);
    summary.SetRaw("drift", drift.Str());
  }
  if (s.has_learn) {
    JsonObject learn;
    learn.Set("state", LearnStateName(s.learn_state))
        .Set("cycles", s.learn_cycles)
        .Set("cycles_failed", s.learn_cycles_failed)
        .Set("cycles_skipped", s.learn_cycles_skipped)
        .Set("records_trained", s.learn_records_trained)
        .Set("feedback_records", s.learn_feedback_records)
        .Set("bad_frames", s.learn_bad_frames)
        .Set("candidate_version",
             static_cast<int64_t>(s.learn_candidate_version))
        .Set("advisory_seq", static_cast<int64_t>(s.learn_advisory_seq));
    summary.SetRaw("learn", learn.Str());
  }
  if (s.has_shards) {
    std::string rows = "[";
    for (size_t i = 0; i < s.shards.size(); ++i) {
      JsonObject row;
      row.Set("shard", static_cast<int64_t>(i))
          .Set("requests", s.shards[i].requests)
          .Set("ok", s.shards[i].ok)
          .Set("shed", s.shards[i].shed)
          .Set("errors", s.shards[i].errors);
      if (i > 0) rows += ",";
      rows += row.Str();
    }
    rows += "]";
    JsonObject wire;
    wire.Set("frames", s.wire_frames)
        .Set("bytes_tx", s.wire_bytes_tx)
        .Set("bytes_rx", s.wire_bytes_rx)
        .Set("rejects", s.wire_rejects);
    JsonObject sharding;
    sharding.Set("fleet_stage", FleetStageName(s.fleet_stage))
        .Set("fleet_upgraded", s.fleet_upgraded)
        .Set("fleet_rollbacks", s.fleet_rollbacks)
        .SetRaw("shards", rows)
        .SetRaw("wire", wire.Str());
    summary.SetRaw("sharding", sharding.Str());
  }
  return summary.Str();
}

/// `prev` carries the previous refresh for interval QPS; null on the
/// first paint (and in --once mode).
void Render(const Summary& s, const Summary* prev, double interval_s) {
  std::printf("uae_top — build %s — up %.0fs\n",
              s.build.empty() ? "?" : s.build.c_str(), s.uptime_s);
  double interval_qps = -1.0;
  if (prev != nullptr && interval_s > 0.0 && s.requests >= prev->requests) {
    interval_qps = (s.requests - prev->requests) / interval_s;
  }
  if (interval_qps >= 0.0) {
    std::printf("traffic    %.0f requests | %.1f QPS now | %.1f lifetime\n",
                s.requests, interval_qps, s.qps_lifetime);
  } else {
    std::printf("traffic    %.0f requests | %.1f QPS lifetime\n",
                s.requests, s.qps_lifetime);
  }
  std::printf("latency    p50 %.2fms  p95 %.2fms  p99 %.2fms   "
              "(queue-wait p95 %.2fms, score p95 %.2fms)\n",
              s.p50_ms, s.p95_ms, s.p99_ms, s.queue_wait_p95_ms,
              s.score_p95_ms);
  std::printf("queue      depth %.0f | in-flight %.0f\n", s.queue_depth,
              s.in_flight);
  std::printf("shed       %.0f total | deadline %.0f | queue_full %.0f | "
              "breaker %.0f | draining %.0f | degraded %.0f\n",
              s.shed_total, s.shed_deadline, s.shed_queue_full,
              s.shed_breaker, s.shed_draining, s.degraded);
  std::printf("versions   published v%.0f", s.snapshot_version);
  if (s.candidate_version > 0.0) {
    std::printf(" | candidate v%.0f", s.candidate_version);
  }
  std::printf(" | rollout %s (%s) | breaker %s\n",
              RolloutStageName(s.rollout_stage),
              s.rollout_healthy > 0.5 ? "healthy" : "unhealthy",
              BreakerStateName(s.breaker_state));
  if (s.has_slo) {
    std::printf("slo        budget %.1f%% consumed (%.1f%% left) | "
                "burn %.2f\n",
                100.0 * s.slo_budget_consumed,
                100.0 * s.slo_budget_remaining, s.slo_advisory_burn);
  }
  if (s.has_drift) {
    std::printf("drift      %s (score %.3f) | %.0f samples, %.0f windows, "
                "%.0f flags | %.0f advisories\n",
                s.drift_flagged > 0.5 ? "FLAGGED" : "quiet", s.drift_score,
                s.drift_samples, s.drift_windows, s.drift_flags,
                s.drift_advisories);
  }
  if (s.has_learn) {
    std::printf("learn      %s | %.0f cycles (%.0f failed, %.0f skipped) | "
                "%.0f records trained | candidate v%.0f\n",
                LearnStateName(s.learn_state), s.learn_cycles,
                s.learn_cycles_failed, s.learn_cycles_skipped,
                s.learn_records_trained, s.learn_candidate_version);
    std::printf("  stream   %.0f feedback records | %.0f bad frames",
                s.learn_feedback_records, s.learn_bad_frames);
    if (s.learn_advisory_seq >= 0.0) {
      std::printf(" | advisory seq %.0f", s.learn_advisory_seq);
    }
    std::printf("\n");
  }
  if (s.has_shards) {
    std::printf("shards     %zu shards | fleet %s (%.0f upgraded, "
                "%.0f rollbacks)\n",
                s.shards.size(), FleetStageName(s.fleet_stage),
                s.fleet_upgraded, s.fleet_rollbacks);
    for (size_t i = 0; i < s.shards.size(); ++i) {
      std::printf("  shard %-2zu %.0f req | %.0f ok | %.0f shed | "
                  "%.0f err\n",
                  i, s.shards[i].requests, s.shards[i].ok, s.shards[i].shed,
                  s.shards[i].errors);
    }
    std::printf("wire       %.0f frames | %.1f MiB tx | %.1f MiB rx | "
                "%.0f rejects\n",
                s.wire_frames, s.wire_bytes_tx / (1024.0 * 1024.0),
                s.wire_bytes_rx / (1024.0 * 1024.0), s.wire_rejects);
  }
  const double lookups = s.cache_hits + s.cache_misses;
  std::printf("cache      %.0f hits / %.0f misses (%.1f%% hit) | "
              "%.0f evictions\n",
              s.cache_hits, s.cache_misses,
              lookups > 0.0 ? 100.0 * s.cache_hits / lookups : 0.0,
              s.cache_evictions);
  std::printf("exemplars  %.0f slow-request records\n", s.exemplars);
}

int Usage() {
  std::fprintf(stderr,
               "usage: uae_top [--file PATH] [--interval-ms N] "
               "[--iterations N] [--once] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (const char* env = std::getenv("UAE_METRICS_EXPORT_PATH")) path = env;
  int interval_ms = 1000;
  int iterations = 0;
  bool once = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--file" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "uae_top: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "uae_top: no export file (--file PATH or "
                 "UAE_METRICS_EXPORT_PATH)\n");
    return Usage();
  }
  if (json && !once) {
    std::fprintf(stderr, "uae_top: --json requires --once\n");
    return Usage();
  }
  if (interval_ms <= 0) interval_ms = 1000;

  bool have_prev = false;
  Summary prev;
  for (int iter = 0;; ++iter) {
    const StatusOr<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "uae_top: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    const StatusOr<std::vector<PromSample>> samples =
        uae::telemetry::ParsePrometheusText(text.value());
    if (!samples.ok()) {
      std::fprintf(stderr, "uae_top: %s does not parse: %s\n", path.c_str(),
                   samples.status().ToString().c_str());
      return 1;
    }
    const Summary summary = Summarize(Index(samples.value()));
    if (once) {
      if (json) {
        std::printf("%s\n", ToJson(summary).c_str());
      } else {
        Render(summary, nullptr, 0.0);
      }
      return 0;
    }
    // ANSI clear + home keeps the dashboard in place between refreshes.
    std::printf("\033[2J\033[H");
    Render(summary, have_prev ? &prev : nullptr,
           static_cast<double>(interval_ms) / 1e3);
    std::fflush(stdout);
    prev = summary;
    have_prev = true;
    if (iterations > 0 && iter + 1 >= iterations) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
