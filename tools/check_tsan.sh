#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and runs the concurrency-labeled
# test subset (parallel_*, trace_test, telemetry_test, the serve
# hot-swap hammer plus its exporter/flight-recorder hammer and the
# shard-router hammer — scorers, snapshot swaps on every shard of a
# 4-shard fleet, wire-protocol round trips, a Prometheus registry
# render loop, a fleet_status() poll loop, and a ring Snapshot() drain
# all racing — and the continuous-learning hammer: lock-free feedback
# producers, the scorer-side feedback tap, and a background LearnLoop
# running ingest→train→publish cycles under live traffic) against it.
#
# TSan and ASan runtimes cannot coexist, so this uses a dedicated
# build-tsan/ tree (-DUAE_SANITIZE=thread) next to the normal build.
# A clean exit means the pool, the trace rings, and the telemetry
# registry raced nothing under real multi-thread schedules.
#
# Usage: tools/check_tsan.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"

cmake -S "$repo" -B "$build" -DUAE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j"$(nproc)" --target \
  parallel_test parallel_determinism_test trace_test telemetry_test \
  serve_hammer_test learn_hammer_test

# second_deadlock_stack gives both stacks on lock-order reports;
# halt_on_error fails fast instead of drowning in repeats.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

cd "$build"
ctest -L concurrency --output-on-failure "$@"
echo "TSan concurrency subset: clean"
