#ifndef UAE_TOOLS_TRACE_ANALYSIS_H_
#define UAE_TOOLS_TRACE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace uae::tools {

// Offline analysis behind the `uae_trace` CLI (see tools/uae_trace.cc).
// Ingests any of the three machine-readable perf artifacts this repo
// produces and reduces them to the tables an optimization loop needs:
//   - Chrome trace-event JSON from common/trace (hierarchical spans),
//   - telemetry JSONL streams from common/telemetry (PR-2 format),
//   - BENCH_<name>.json baselines from bench/bench_common.h.
// Kept as a library so tests can drive every code path without
// spawning the binary.

/// One ingested trace event (Chrome "X" span or "i" instant).
struct AnalyzerEvent {
  std::string name;
  char phase = 'X';
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, double>> args;

  double Arg(const std::string& key, double fallback) const;
  bool HasArg(const std::string& key) const;
};

enum class InputKind { kChromeTrace, kTelemetryJsonl, kBenchBaseline };

/// Per-op aggregate. `self_us` excludes time spent in child spans, so
/// the column sums to wall time instead of double-counting parents.
struct OpStat {
  std::string name;
  int64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  double max_us = 0.0;
};

/// One per-epoch record from a telemetry JSONL ("trainer.epoch" or
/// "uae.epoch").
struct EpochRecord {
  std::string type;
  int epoch = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double loss = 0.0;
};

struct TraceData {
  InputKind kind = InputKind::kChromeTrace;
  std::string path;
  std::string build;
  uint64_t dropped_events = 0;
  std::vector<AnalyzerEvent> events;   // Chrome traces.
  std::vector<OpStat> jsonl_ops;       // JSONL histogram metrics.
  std::vector<EpochRecord> jsonl_epochs;
  json::Value bench;                   // Bench baselines.
};

/// Loads `path`, auto-detecting the format: a JSON object with
/// "traceEvents" is a Chrome trace, one with "bench" is a baseline,
/// anything line-delimited is telemetry JSONL.
StatusOr<TraceData> Load(const std::string& path);

/// Parses an in-memory Chrome trace document (exposed for tests).
StatusOr<TraceData> FromChromeTraceJson(const json::Value& doc);

/// Self/total time per span name, sorted by self time descending.
/// Works for both Chrome traces (true self time via the span hierarchy)
/// and JSONL metrics (self == total; no hierarchy recorded).
std::vector<OpStat> SelfTimePerOp(const TraceData& trace);

/// Verifies every thread's spans are strictly well-nested: sorted by
/// start time, each span lies fully inside the enclosing open span.
/// This is the exporter's structural invariant — a violation means a
/// torn ring slot or a tracer bug.
Status ValidateNesting(const TraceData& trace);

/// Per-epoch, per-span-name totals (spans carrying an "epoch" arg).
struct PhaseRow {
  int epoch = 0;
  std::string name;
  int64_t count = 0;
  double total_us = 0.0;
};
std::vector<PhaseRow> EpochPhaseBreakdown(const TraceData& trace);

/// The `top_n` longest spans whose name contains `name_substr` — the
/// slowest-batch outlier list when called with "batch".
std::vector<AnalyzerEvent> SlowestSpans(const TraceData& trace,
                                        const std::string& name_substr,
                                        int top_n);

// ---------------------------------------------------------------------
// Regression comparison. `tolerance` is the allowed slowdown ratio
// (1.3 = +30%); anything above it flags a regression.

struct CompareRow {
  std::string name;
  double old_us = 0.0;
  double new_us = 0.0;
  double ratio = 1.0;     // new/old; +inf encoded as a large number.
  bool significant = false;  // Large enough to count toward the gate.
};

struct CompareResult {
  std::vector<CompareRow> rows;  // Sorted by ratio descending.
  bool bench = false;  // Rows are raw baseline fields, not µs self times.
  double total_old_us = 0.0;
  double total_new_us = 0.0;
  double worst_ratio = 0.0;  // Over significant rows + the totals row.
  bool regression = false;
  std::string summary;  // One-line human verdict.
};

/// Compares per-op self times of two traces (or two JSONL streams).
CompareResult CompareTraces(const TraceData& old_trace,
                            const TraceData& new_trace, double tolerance);

/// Compares two BENCH_<name>.json baselines: wall_s up, events/sec
/// down, peak RSS up (RSS informational only, never gates).
CompareResult CompareBench(const TraceData& old_trace,
                           const TraceData& new_trace, double tolerance);

/// Dispatches on input kind; it is an error to mix kinds.
StatusOr<CompareResult> Compare(const TraceData& old_trace,
                                const TraceData& new_trace,
                                double tolerance);

// ---------------------------------------------------------------------
// Text rendering (stdout of the CLI).

std::string RenderSummary(const TraceData& trace, int top_ops,
                          int top_outliers);
std::string RenderCompare(const CompareResult& result);

}  // namespace uae::tools

#endif  // UAE_TOOLS_TRACE_ANALYSIS_H_
