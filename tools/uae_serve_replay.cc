// uae_serve_replay: drives serve::Engine with simulated traffic.
//
//   uae_serve_replay [flags]
//
// Two phases (see serve/replay.h): a closed loop that replays the same
// request set cold then warm — the ratio is what the session-state cache
// buys — and an optional open loop that offers a fixed QPS with
// per-request deadlines to demonstrate shedding beyond capacity.
//
//   --requests N        distinct users / requests per pass   (256)
//   --history N         session-tail events per request      (96)
//   --candidates N      candidate pool per request           (10)
//   --threads N         client threads                       (8)
//   --max-batch N       engine batch size                    (8)
//   --max-queue N       engine queue bound                   (64)
//   --max-wait-us N     dispatcher linger                    (0)
//   --qps X             open-loop offered QPS (0 = skip)     (0)
//   --qps-factor F      offer F x the measured warm
//                       throughput instead of a fixed QPS    (0)
//   --open-requests N   open-loop request count              (4 * requests)
//   --deadline-ms N     open-loop per-request deadline       (50)
//   --checkpoint-dir D  stage the snapshot through UAECKPT2
//                       files in D (exercises fingerprint
//                       validation); default serves in-process
//   --sessions N        simulated world size                 (400)
//
// Sharded serving (DESIGN.md §15):
//   --shards N          route through a consistent-hash ShardRouter
//                       over N engines, each request crossing the
//                       binary wire protocol both ways; 1 keeps the
//                       direct single-engine path              (1)
//   --vnodes N          ring points per shard                  (64)
//   --synthetic-users N remap request users onto N synthetic ids
//                       (set to millions for a production-scale
//                       routing key space)                     (0)
//
// Resilience drills:
//   --retries N           retry closed-loop sheds up to N times (0)
//   --backoff-us N        exponential-backoff base per retry  (200)
//   --rollout             after the closed loop, promote an
//                         identical candidate snapshot through a
//                         full canary -> ramp -> full rollout
//   --degrade-on-deadline serve prior-ranked (degraded) responses
//                         instead of shedding on deadline misses
//   --chaos-delay-p P     arm the serve.score.delay fault point:
//                         each scored request stalls with
//                         probability P                       (0)
//   --chaos-delay-us N    ... for N micros per fire           (2000)
//
// Observability (DESIGN.md §13):
//   --export-metrics PATH   keep a Prometheus text export fresh at
//                           PATH for the whole run (watch it live
//                           with `uae_top --file PATH`)
//   --export-interval-ms N  exporter refresh period             (200)
//   --slowlog PATH          append slow-request exemplars (rolling
//                           p99 outliers, full flight record +
//                           active trace spans) to PATH as JSONL
//   --slo                   track SLOs over the run: availability
//                           99.9%, latency p99 <= deadline-ms,
//                           p95 <= deadline-ms/2
//   --drift                 track model-quality drift (score / alpha /
//                           CTR / skip distributions, PSI + Welch,
//                           DESIGN.md §14) over the run
//   --drift-window N        samples per drift window            (256)
//   --drift-advisory PATH   write retrain-advisory JSONL records
//                           for flagged verdicts to PATH
//
// Continuous learning (DESIGN.md §16):
//   --feedback-log PATH     emit the closed-loop traffic's feedback
//                           stream (CRC-framed (user, song, outcome,
//                           alpha-hat) records) to PATH — the input
//                           the LearnLoop tails for incremental
//                           retraining
//
// Exit codes: 0 ok, 1 replay failed, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "learn/bridge.h"
#include "learn/feedback_log.h"
#include "serve/replay.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: uae_serve_replay [--requests N] [--history N] "
               "[--candidates N]\n"
               "                        [--threads N] [--max-batch N] "
               "[--max-queue N]\n"
               "                        [--max-wait-us N] [--qps X] "
               "[--qps-factor F] [--open-requests N]\n"
               "                        [--deadline-ms N] "
               "[--checkpoint-dir DIR] [--sessions N]\n"
               "                        [--shards N] [--vnodes N] "
               "[--synthetic-users N]\n"
               "                        [--retries N] [--backoff-us N] "
               "[--rollout] [--degrade-on-deadline]\n"
               "                        [--chaos-delay-p P] "
               "[--chaos-delay-us N]\n"
               "                        [--export-metrics PATH] "
               "[--export-interval-ms N]\n"
               "                        [--slowlog PATH] [--slo] [--drift]\n"
               "                        [--drift-window N] "
               "[--drift-advisory PATH]\n"
               "                        [--feedback-log PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uae;
  SetLogLevel(LogLevel::kWarning);

  serve::ReplayConfig config;
  config.world = data::GeneratorConfig::ProductPreset();
  config.world.num_sessions = 400;
  config.engine.max_wait_us = 0;
  int open_requests = 0;
  double chaos_delay_p = 0.0;
  int chaos_delay_us = 2000;
  std::string feedback_log_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--requests") {
      if (!next_int(&config.requests)) return Usage();
    } else if (arg == "--history") {
      if (!next_int(&config.history_length)) return Usage();
    } else if (arg == "--candidates") {
      if (!next_int(&config.candidates)) return Usage();
    } else if (arg == "--threads") {
      if (!next_int(&config.client_threads)) return Usage();
    } else if (arg == "--max-batch") {
      if (!next_int(&config.engine.max_batch)) return Usage();
    } else if (arg == "--max-queue") {
      if (!next_int(&config.engine.max_queue)) return Usage();
    } else if (arg == "--max-wait-us") {
      if (!next_int(&config.engine.max_wait_us)) return Usage();
    } else if (arg == "--qps" && i + 1 < argc) {
      config.offered_qps = std::atof(argv[++i]);
    } else if (arg == "--qps-factor" && i + 1 < argc) {
      config.offered_qps_factor = std::atof(argv[++i]);
    } else if (arg == "--open-requests") {
      if (!next_int(&open_requests)) return Usage();
    } else if (arg == "--deadline-ms") {
      if (!next_int(&config.deadline_ms)) return Usage();
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      config.checkpoint_dir = argv[++i];
    } else if (arg == "--sessions") {
      if (!next_int(&config.world.num_sessions)) return Usage();
    } else if (arg == "--shards") {
      if (!next_int(&config.shards)) return Usage();
    } else if (arg == "--vnodes") {
      if (!next_int(&config.virtual_nodes)) return Usage();
    } else if (arg == "--synthetic-users" && i + 1 < argc) {
      config.synthetic_users = std::atoll(argv[++i]);
    } else if (arg == "--retries") {
      if (!next_int(&config.retries)) return Usage();
    } else if (arg == "--backoff-us") {
      if (!next_int(&config.backoff_base_us)) return Usage();
    } else if (arg == "--rollout") {
      config.exercise_rollout = true;
    } else if (arg == "--degrade-on-deadline") {
      config.engine.degrade_on_deadline = true;
    } else if (arg == "--chaos-delay-p" && i + 1 < argc) {
      chaos_delay_p = std::atof(argv[++i]);
    } else if (arg == "--chaos-delay-us") {
      if (!next_int(&chaos_delay_us)) return Usage();
    } else if (arg == "--export-metrics" && i + 1 < argc) {
      config.metrics_export_path = argv[++i];
    } else if (arg == "--export-interval-ms") {
      if (!next_int(&config.metrics_export_interval_ms)) return Usage();
    } else if (arg == "--slowlog" && i + 1 < argc) {
      config.slowlog_path = argv[++i];
    } else if (arg == "--slo") {
      config.slo = true;
    } else if (arg == "--drift") {
      config.drift = true;
    } else if (arg == "--drift-window") {
      if (!next_int(&config.drift_window)) return Usage();
      config.drift = true;
    } else if (arg == "--drift-advisory" && i + 1 < argc) {
      config.drift_advisory_path = argv[++i];
      config.drift = true;
    } else if (arg == "--feedback-log" && i + 1 < argc) {
      feedback_log_path = argv[++i];
    } else {
      std::fprintf(stderr, "uae_serve_replay: unknown flag %s\n",
                   arg.c_str());
      return Usage();
    }
  }
  config.open_loop_requests =
      open_requests > 0 ? open_requests : 4 * config.requests;

  if (chaos_delay_p > 0.0) {
    // Deterministic latency chaos for the whole run: each scored
    // request stalls with probability P for the configured micros.
    FaultInjector::Instance().Arm(
        "serve.score.delay",
        {/*probability=*/chaos_delay_p, /*seed=*/config.seed + 1,
         /*delay_micros=*/chaos_delay_us});
  }

  std::unique_ptr<learn::FeedbackLog> feedback_log;
  if (!feedback_log_path.empty()) {
    StatusOr<std::unique_ptr<learn::FeedbackLog>> opened =
        learn::FeedbackLog::Open({feedback_log_path});
    if (!opened.ok()) {
      std::fprintf(stderr, "uae_serve_replay: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    feedback_log = std::move(opened).value();
    learn::AttachReplayFeedback(&config, feedback_log.get(), config.seed);
  }

  std::printf("replaying %d requests (history %d, %d candidates) on %d "
              "client threads%s...\n",
              config.requests, config.history_length, config.candidates,
              config.client_threads,
              config.checkpoint_dir.empty() ? ""
                                            : " via staged checkpoints");
  const StatusOr<serve::ReplayReport> replayed = serve::RunReplay(config);
  if (!replayed.ok()) {
    std::fprintf(stderr, "uae_serve_replay: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  const serve::ReplayReport& r = replayed.value();

  std::printf("\nsnapshot version  %llu\n",
              static_cast<unsigned long long>(r.snapshot_version));
  std::printf("closed loop       %lld requests/pass\n",
              static_cast<long long>(r.closed_requests));
  std::printf("  cold pass       %.3fs (full-history replay)\n",
              r.cold_seconds);
  std::printf("  warm pass       %.3fs (cached GRU state)\n",
              r.warm_seconds);
  std::printf("  warm speedup    %.1fx\n", r.warm_speedup);
  std::printf("  warm throughput %.1f req/s\n", r.warm_qps);
  std::printf("  warm latency    p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
              r.p50_ms, r.p95_ms, r.p99_ms);
  std::printf("  cache hit rate  %.1f%%\n", 100.0 * r.cache_hit_rate);
  if (r.open_requests > 0) {
    std::printf("open loop         %lld requests offered at %.1f QPS\n",
                static_cast<long long>(r.open_requests), r.offered_qps);
    std::printf("  completed       %lld (%.1f QPS achieved)\n",
                static_cast<long long>(r.open_completed), r.achieved_qps);
    std::printf("  shed            %lld (%.1f%%)\n",
                static_cast<long long>(r.open_shed), 100.0 * r.shed_rate);
  }
  if (r.degraded > 0 || r.retries > 0 || config.retries > 0 ||
      config.engine.degrade_on_deadline || chaos_delay_p > 0.0) {
    std::printf("resilience\n");
    std::printf("  degraded        %lld (%.1f%%)\n",
                static_cast<long long>(r.degraded),
                100.0 * r.degraded_rate);
    std::printf("  retries spent   %lld\n",
                static_cast<long long>(r.retries));
    if (chaos_delay_p > 0.0) {
      const FaultInjector::FaultStats chaos =
          FaultInjector::Instance().Stats("serve.score.delay");
      std::printf("  chaos delays    %lld/%lld fired\n",
                  static_cast<long long>(chaos.fires),
                  static_cast<long long>(chaos.trials));
    }
  }
  if (!r.rollout_stage.empty()) {
    std::printf("rollout           finished %s, %lld rollback%s\n",
                r.rollout_stage.c_str(),
                static_cast<long long>(r.rollout_rollbacks),
                r.rollout_rollbacks == 1 ? "" : "s");
  }
  if (r.shards > 1) {
    std::printf("sharding          %d shards (%d vnodes/shard", r.shards,
                config.virtual_nodes);
    if (config.synthetic_users > 0) {
      std::printf(", %lld synthetic users",
                  static_cast<long long>(config.synthetic_users));
    }
    std::printf(")\n");
    std::printf("  routed          ");
    for (size_t s = 0; s < r.shard_requests.size(); ++s) {
      std::printf("%s#%zu %lld", s == 0 ? "" : "  ", s,
                  static_cast<long long>(r.shard_requests[s]));
    }
    std::printf("\n");
    std::printf("  balance         %.2fx the uniform share (worst shard)\n",
                r.shard_balance);
    std::printf("  wire            %.1f MiB tx  %.1f MiB rx  %lld rejects\n",
                r.wire_bytes_tx / (1024.0 * 1024.0),
                r.wire_bytes_rx / (1024.0 * 1024.0),
                static_cast<long long>(r.wire_rejects));
  }
  std::printf("observability\n");
  std::printf("  stage p95       queue-wait %.2fms  score %.2fms\n",
              r.queue_wait_p95_ms, r.score_p95_ms);
  if (!config.slowlog_path.empty()) {
    std::printf("  exemplars       %lld written to %s (threshold %.2fms)\n",
                static_cast<long long>(r.exemplars),
                config.slowlog_path.c_str(), r.exemplar_threshold_ms);
  }
  if (config.slo) {
    std::printf("  slo budget      %.1f%% consumed, burn %.2f\n",
                100.0 * r.slo_budget_consumed, r.slo_advisory_burn);
  }
  if (config.drift) {
    std::printf("  drift           %s (score %.3f): %lld windows, "
                "%lld flags (%lld model), %lld advisories\n",
                r.drift_flagged ? "FLAGGED" : "quiet", r.drift_score,
                static_cast<long long>(r.drift_windows),
                static_cast<long long>(r.drift_flags),
                static_cast<long long>(r.drift_model_flags),
                static_cast<long long>(r.drift_advisories));
    if (!config.drift_advisory_path.empty()) {
      std::printf("  drift advisory  %s\n",
                  config.drift_advisory_path.c_str());
    }
  }
  if (!config.metrics_export_path.empty()) {
    std::printf("  metrics export  %s\n",
                config.metrics_export_path.c_str());
  }
  if (feedback_log != nullptr) {
    std::printf("feedback\n");
    std::printf("  records         %lld (%.1f KiB) -> %s\n",
                static_cast<long long>(r.feedback_records),
                r.feedback_bytes / 1024.0, feedback_log_path.c_str());
    if (feedback_log->dropped() > 0) {
      std::printf("  dropped         %lld (log at its size bound)\n",
                  static_cast<long long>(feedback_log->dropped()));
    }
  }
  return 0;
}
