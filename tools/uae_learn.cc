// uae_learn: self-contained continuous-learning loop demo (DESIGN.md
// §16).
//
//   uae_learn [--dir D] [--requests N] [--epochs N] [--min-records N]
//
// One process plays every role of the loop: it stages an incumbent
// checkpoint, serves it through an Engine + RolloutController, drives
// live traffic whose completed playlists are walked by the simulated
// users and appended to the CRC-framed feedback log, then runs one
// ingest → incremental-train → publish cycle and keeps traffic flowing
// until the health-gated canary → ramp → full ladder promotes the
// candidate into the serving engine. The printed report shows each leg.
//
//   --dir D          working directory for checkpoints + the feedback
//                    log (default /tmp/uae_learn_demo; created)
//   --requests N     serving requests per traffic phase        (96)
//   --epochs N       fine-tune epochs per cycle                (2)
//   --min-records N  records required before a cycle trains    (32)
//
// Exit codes: 0 ok, 1 a leg failed, 2 usage error.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "learn/bridge.h"
#include "learn/learn_loop.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/rollout.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: uae_learn [--dir D] [--requests N] [--epochs N] "
               "[--min-records N]\n");
  return 2;
}

int Fail(const uae::Status& status) {
  std::fprintf(stderr, "uae_learn: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uae;
  SetLogLevel(LogLevel::kWarning);

  std::string dir = "/tmp/uae_learn_demo";
  int requests = 96;
  int epochs = 2;
  int min_records = 32;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (arg == "--epochs" && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else if (arg == "--min-records" && i + 1 < argc) {
      min_records = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "uae_learn: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  ::mkdir(dir.c_str(), 0755);
  const std::string incumbent_path = dir + "/incumbent.ckpt";
  const std::string candidate_path = dir + "/candidate.ckpt";
  const std::string feedback_path = dir + "/feedback.log";
  std::remove(feedback_path.c_str());

  // A small simulated world; everything downstream is a deterministic
  // function of it and the seeds below.
  data::GeneratorConfig world_config = data::GeneratorConfig::ProductPreset();
  world_config.num_sessions = 150;
  world_config.num_users = 40;
  world_config.num_songs = 100;
  world_config.num_artists = 20;
  world_config.num_albums = 40;
  const data::World world(world_config, /*seed=*/42);

  // Leg 1: stage the incumbent — a fresh LR init, exactly what the
  // bootstrap cycle of a new deployment would serve.
  const models::ModelKind kind = models::ModelKind::kLr;
  const models::ModelConfig model_config;
  Rng init_rng(1);
  const std::unique_ptr<models::Recommender> incumbent =
      models::CreateRecommender(kind, &init_rng, world.schema(),
                                model_config);
  Status saved =
      serve::SaveRecommender(*incumbent, kind, model_config, incumbent_path);
  if (!saved.ok()) return Fail(saved);

  serve::SnapshotSpec spec;
  spec.schema = world.schema();
  spec.kind = kind;
  spec.model_config = model_config;
  spec.model_path = incumbent_path;
  StatusOr<std::shared_ptr<const serve::ModelSnapshot>> snapshot =
      serve::ModelSnapshot::Load(spec);
  if (!snapshot.ok()) return Fail(snapshot.status());

  serve::EngineConfig engine_config;
  engine_config.max_wait_us = 0;
  engine_config.playlist_length = 10;
  serve::Engine engine(snapshot.value(), engine_config);

  serve::RolloutConfig rollout_config;
  rollout_config.stage_requests = 32;
  rollout_config.health.thresholds.max_latency_ratio = 0.0;
  // The demo's candidate is *supposed* to re-rank (it fine-tuned on real
  // feedback the fresh-init incumbent never saw), so the score-drift
  // criterion — which guards against unexpected distribution shifts —
  // is disabled for the promotion. Production loops retrain from the
  // incumbent and keep it on.
  rollout_config.health.thresholds.max_score_drift = 0.0;
  serve::RolloutController rollout(&engine, rollout_config);

  StatusOr<std::unique_ptr<learn::FeedbackLog>> log =
      learn::FeedbackLog::Open({feedback_path});
  if (!log.ok()) return Fail(log.status());

  // One serving request + simulated walk, appended to the feedback log.
  Rng traffic_rng(7);
  const auto serve_one = [&](uint64_t request_id) -> Status {
    const int user =
        static_cast<int>(request_id % world.config().num_users);
    const int hour = static_cast<int>(traffic_rng.UniformInt(24));
    const int weekday = static_cast<int>(traffic_rng.UniformInt(7));
    serve::ScoreRequest request;
    request.user = user;
    for (int c = 0; c < 20; ++c) {
      const int song = world.SampleSong(&traffic_rng);
      request.candidate_songs.push_back(song);
      request.candidates.push_back(
          world.ScoringEvent(user, song, hour, weekday));
    }
    StatusOr<serve::ScoreResponse> response =
        rollout.Score(std::move(request));
    if (!response.ok()) return response.status();
    const data::Session walk = world.SimulateSession(
        user, response.value().playlist, hour, weekday, &traffic_rng);
    learn::AppendWalk(log.value().get(), walk, response.value().playlist,
                      response.value().scores,
                      response.value().snapshot_version, request_id, hour,
                      weekday);
    return Status::Ok();
  };

  std::printf("phase 1: serving v%llu, emitting feedback...\n",
              static_cast<unsigned long long>(
                  snapshot.value()->version()));
  for (int i = 0; i < requests; ++i) {
    const Status served = serve_one(static_cast<uint64_t>(i));
    if (!served.ok()) return Fail(served);
  }
  std::printf("  %lld records (%.1f KiB) -> %s\n",
              static_cast<long long>(log.value()->records_written()),
              log.value()->bytes_written() / 1024.0,
              feedback_path.c_str());

  // Leg 2: one manual ingest → train → publish cycle.
  learn::LearnLoopConfig loop_config;
  loop_config.ingest.path = feedback_path;
  loop_config.trainer.kind = kind;
  loop_config.trainer.model_config = model_config;
  loop_config.trainer.incumbent_path = incumbent_path;
  loop_config.trainer.candidate_path = candidate_path;
  loop_config.trainer.train.epochs = epochs;
  loop_config.trainer.train.batch_size = 64;
  loop_config.publisher.schema = world.schema();
  loop_config.publisher.kind = kind;
  loop_config.publisher.model_config = model_config;
  loop_config.min_records = min_records;
  learn::LearnLoop loop(&world, &rollout, loop_config);

  std::printf("phase 2: learn cycle (fine-tune %d epochs)...\n", epochs);
  StatusOr<learn::CycleReport> cycle =
      loop.RunCycle(learn::CycleTrigger::kManual);
  if (!cycle.ok()) return Fail(cycle.status());
  const learn::CycleReport& report = cycle.value();
  if (!report.published) {
    std::fprintf(stderr, "uae_learn: cycle did not publish: %s\n",
                 report.skipped_reason.c_str());
    return 1;
  }
  std::printf("  trained on %lld records, valid AUC %.4f -> candidate "
              "v%llu staged\n",
              static_cast<long long>(report.records),
              report.train.best_valid_auc,
              static_cast<unsigned long long>(report.candidate_version));

  // Leg 3: live traffic advances the canary → ramp → full ladder.
  std::printf("phase 3: promoting under live traffic...\n");
  serve::RolloutStage stage = rollout.stage();
  uint64_t request_id = static_cast<uint64_t>(requests);
  for (int window = 0; window < 8; ++window) {
    if (rollout.stage() == serve::RolloutStage::kIdle ||
        rollout.stage() == serve::RolloutStage::kRolledBack) {
      break;
    }
    for (int i = 0; i < rollout_config.stage_requests; ++i) {
      const Status served = serve_one(request_id++);
      if (!served.ok()) return Fail(served);
    }
    if (rollout.stage() != stage) {
      std::printf("  stage -> %s\n",
                  serve::RolloutStageName(rollout.stage()));
      stage = rollout.stage();
    }
  }

  const bool promoted =
      rollout.stage() == serve::RolloutStage::kIdle &&
      rollout.rollbacks() == 0 &&
      engine.snapshot()->version() == report.candidate_version;
  std::printf("\nresult\n");
  std::printf("  serving version   v%llu\n",
              static_cast<unsigned long long>(
                  engine.snapshot()->version()));
  std::printf("  rollout           %s, %lld rollback%s\n",
              serve::RolloutStageName(rollout.stage()),
              static_cast<long long>(rollout.rollbacks()),
              rollout.rollbacks() == 1 ? "" : "s");
  std::printf("  cycles            %lld ok, %lld failed, %lld skipped\n",
              static_cast<long long>(loop.cycles()),
              static_cast<long long>(loop.cycles_failed()),
              static_cast<long long>(loop.cycles_skipped()));
  std::printf("  loop              %s\n",
              promoted ? "PROMOTED — the model the users taught is live"
                       : "candidate not promoted");
  return promoted ? 0 : 1;
}
