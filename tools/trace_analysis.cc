#include "trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/table.h"

namespace uae::tools {
namespace {

/// Self-time sweeps treat ratios above this as "infinite" (op absent
/// from the old trace).
constexpr double kHugeRatio = 1e9;

/// Ops below this share of the old total are too small to gate a
/// regression verdict on — a 3x blowup of a 2µs op is noise.
constexpr double kSignificantShare = 0.005;
constexpr double kSignificantFloorUs = 100.0;

std::string FormatUs(double us) {
  char buf[64];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", us);
  }
  return buf;
}

StatusOr<TraceData> FromBenchJson(const json::Value& doc) {
  TraceData trace;
  trace.kind = InputKind::kBenchBaseline;
  trace.bench = doc;
  trace.build = doc.GetString("build", "unknown");
  return trace;
}

StatusOr<TraceData> FromTelemetryJsonl(const std::string& text) {
  TraceData trace;
  trace.kind = InputKind::kTelemetryJsonl;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  int parsed_lines = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty()) continue;
    StatusOr<json::Value> parsed = json::Parse(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    const json::Value& record = parsed.value();
    ++parsed_lines;
    const std::string type = record.GetString("type");
    if (type == "metric" && record.GetString("kind") == "histogram") {
      OpStat op;
      op.name = record.GetString("name");
      op.count = static_cast<int64_t>(record.GetNumber("count"));
      op.total_us = record.GetNumber("sum") * 1e6;  // Histograms: seconds.
      op.self_us = op.total_us;  // No hierarchy in JSONL metrics.
      op.max_us = record.GetNumber("max") * 1e6;
      if (op.count > 0) trace.jsonl_ops.push_back(std::move(op));
    } else if (type == "trainer.epoch" || type == "uae.epoch") {
      EpochRecord epoch;
      epoch.type = type;
      epoch.epoch = static_cast<int>(record.GetNumber("epoch"));
      epoch.seconds = record.GetNumber("epoch_seconds");
      epoch.events_per_sec = record.GetNumber("events_per_sec");
      epoch.loss = record.GetNumber(
          type == "uae.epoch" ? "att_risk" : "loss");
      trace.jsonl_epochs.push_back(std::move(epoch));
    }
  }
  if (parsed_lines == 0) {
    return Status::InvalidArgument("no JSON records found");
  }
  return trace;
}

/// Sort order for nesting sweeps: by start, then longer spans first so
/// a parent sharing its child's start timestamp is visited first.
bool SpanBefore(const AnalyzerEvent& a, const AnalyzerEvent& b) {
  if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
  return a.dur_us > b.dur_us;
}

/// Groups complete ("X") span indices by tid, each sorted for sweeping.
std::map<int, std::vector<const AnalyzerEvent*>> SpansByThread(
    const TraceData& trace) {
  std::map<int, std::vector<const AnalyzerEvent*>> by_tid;
  for (const AnalyzerEvent& event : trace.events) {
    if (event.phase == 'X') by_tid[event.tid].push_back(&event);
  }
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const AnalyzerEvent* a, const AnalyzerEvent* b) {
                return SpanBefore(*a, *b);
              });
  }
  return by_tid;
}

}  // namespace

double AnalyzerEvent::Arg(const std::string& key, double fallback) const {
  for (const auto& [name, value] : args) {
    if (name == key) return value;
  }
  return fallback;
}

bool AnalyzerEvent::HasArg(const std::string& key) const {
  for (const auto& [name, value] : args) {
    if (name == key) return true;
  }
  return false;
}

StatusOr<TraceData> FromChromeTraceJson(const json::Value& doc) {
  const json::Value* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("no traceEvents array");
  }
  TraceData trace;
  trace.kind = InputKind::kChromeTrace;
  const json::Value* other = doc.Find("otherData");
  if (other != nullptr) {
    trace.build = other->GetString("build", "unknown");
    trace.dropped_events =
        static_cast<uint64_t>(other->GetNumber("dropped_events"));
  }
  for (const json::Value& entry : events->array) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("traceEvents entry is not an object");
    }
    const std::string phase = entry.GetString("ph");
    if (phase == "M") continue;  // Metadata (process/thread names).
    if (phase != "X" && phase != "i") continue;  // Foreign phases: skip.
    AnalyzerEvent event;
    event.phase = phase[0];
    event.name = entry.GetString("name", "<unnamed>");
    event.tid = static_cast<int>(entry.GetNumber("tid"));
    event.ts_us = entry.GetNumber("ts");
    event.dur_us = entry.GetNumber("dur");
    const json::Value* args = entry.Find("args");
    if (args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->object) {
        if (value.is_number()) {
          event.args.emplace_back(key, value.number_value);
        }
      }
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

StatusOr<TraceData> Load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  StatusOr<TraceData> result = [&]() -> StatusOr<TraceData> {
    StatusOr<json::Value> whole = json::Parse(text);
    if (whole.ok() && whole.value().is_object()) {
      const json::Value& doc = whole.value();
      if (doc.Find("traceEvents") != nullptr) {
        return FromChromeTraceJson(doc);
      }
      if (doc.Find("bench") != nullptr) return FromBenchJson(doc);
      // A single-object file without either marker: a one-line JSONL
      // stream (e.g. a manifest) — fall through to the JSONL reader.
    }
    return FromTelemetryJsonl(text);
  }();
  if (!result.ok()) {
    return Status(result.status().code(),
                  path + ": " + result.status().message());
  }
  result.value().path = path;
  return result;
}

std::vector<OpStat> SelfTimePerOp(const TraceData& trace) {
  if (trace.kind == InputKind::kTelemetryJsonl) {
    std::vector<OpStat> ops = trace.jsonl_ops;
    std::sort(ops.begin(), ops.end(), [](const OpStat& a, const OpStat& b) {
      return a.self_us > b.self_us;
    });
    return ops;
  }
  std::map<std::string, OpStat> by_name;
  for (const auto& [tid, spans] : SpansByThread(trace)) {
    // Sweep with an open-span stack; each span's self time starts at
    // its duration and loses every direct child's duration.
    struct Open {
      const AnalyzerEvent* span;
      double self_us;
    };
    std::vector<Open> stack;
    auto close_until = [&](double ts) {
      while (!stack.empty() &&
             stack.back().span->ts_us + stack.back().span->dur_us <= ts) {
        OpStat& op = by_name[stack.back().span->name];
        op.name = stack.back().span->name;
        ++op.count;
        op.total_us += stack.back().span->dur_us;
        op.self_us += std::max(0.0, stack.back().self_us);
        op.max_us = std::max(op.max_us, stack.back().span->dur_us);
        stack.pop_back();
      }
    };
    for (const AnalyzerEvent* span : spans) {
      close_until(span->ts_us);
      if (!stack.empty()) stack.back().self_us -= span->dur_us;
      stack.push_back({span, span->dur_us});
    }
    close_until(1e300);
  }
  std::vector<OpStat> ops;
  ops.reserve(by_name.size());
  for (auto& [name, op] : by_name) ops.push_back(std::move(op));
  std::sort(ops.begin(), ops.end(), [](const OpStat& a, const OpStat& b) {
    return a.self_us > b.self_us;
  });
  return ops;
}

Status ValidateNesting(const TraceData& trace) {
  if (trace.kind != InputKind::kChromeTrace) {
    return Status::InvalidArgument("nesting check needs a Chrome trace");
  }
  for (const auto& [tid, spans] : SpansByThread(trace)) {
    std::vector<const AnalyzerEvent*> stack;
    for (const AnalyzerEvent* span : spans) {
      while (!stack.empty() &&
             stack.back()->ts_us + stack.back()->dur_us <= span->ts_us) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        const AnalyzerEvent* parent = stack.back();
        // The span starts inside the parent, so it must end inside too;
        // a partial overlap is shear.
        if (span->ts_us + span->dur_us >
            parent->ts_us + parent->dur_us + 1e-6) {
          return Status::FailedPrecondition(
              "tid " + std::to_string(tid) + ": span \"" + span->name +
              "\" at ts=" + std::to_string(span->ts_us) +
              " overlaps \"" + parent->name + "\" without nesting");
        }
      }
      stack.push_back(span);
    }
  }
  return Status::Ok();
}

std::vector<PhaseRow> EpochPhaseBreakdown(const TraceData& trace) {
  std::map<std::pair<int, std::string>, PhaseRow> rows;
  for (const AnalyzerEvent& event : trace.events) {
    if (event.phase != 'X' || !event.HasArg("epoch")) continue;
    const int epoch = static_cast<int>(event.Arg("epoch", 0));
    PhaseRow& row = rows[{epoch, event.name}];
    row.epoch = epoch;
    row.name = event.name;
    ++row.count;
    row.total_us += event.dur_us;
  }
  std::vector<PhaseRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  return out;  // Already (epoch, name)-sorted via the map key.
}

std::vector<AnalyzerEvent> SlowestSpans(const TraceData& trace,
                                        const std::string& name_substr,
                                        int top_n) {
  std::vector<AnalyzerEvent> matching;
  for (const AnalyzerEvent& event : trace.events) {
    if (event.phase == 'X' &&
        event.name.find(name_substr) != std::string::npos) {
      matching.push_back(event);
    }
  }
  std::sort(matching.begin(), matching.end(),
            [](const AnalyzerEvent& a, const AnalyzerEvent& b) {
              return a.dur_us > b.dur_us;
            });
  if (static_cast<int>(matching.size()) > top_n) matching.resize(top_n);
  return matching;
}

CompareResult CompareTraces(const TraceData& old_trace,
                            const TraceData& new_trace, double tolerance) {
  const std::vector<OpStat> old_ops = SelfTimePerOp(old_trace);
  const std::vector<OpStat> new_ops = SelfTimePerOp(new_trace);
  std::map<std::string, const OpStat*> old_by_name;
  for (const OpStat& op : old_ops) old_by_name[op.name] = &op;

  CompareResult result;
  for (const OpStat& op : old_ops) result.total_old_us += op.self_us;
  for (const OpStat& op : new_ops) result.total_new_us += op.self_us;
  const double floor_us = std::max(
      kSignificantFloorUs, kSignificantShare * result.total_old_us);

  for (const OpStat& new_op : new_ops) {
    CompareRow row;
    row.name = new_op.name;
    row.new_us = new_op.self_us;
    auto it = old_by_name.find(new_op.name);
    row.old_us = it != old_by_name.end() ? it->second->self_us : 0.0;
    row.ratio = row.old_us > 0.0
                    ? row.new_us / row.old_us
                    : (row.new_us > 0.0 ? kHugeRatio : 1.0);
    row.significant = std::max(row.old_us, row.new_us) >= floor_us &&
                      row.old_us > 0.0;
    result.rows.push_back(std::move(row));
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const CompareRow& a, const CompareRow& b) {
              return a.ratio > b.ratio;
            });
  for (const CompareRow& row : result.rows) {
    if (row.significant) {
      result.worst_ratio = std::max(result.worst_ratio, row.ratio);
    }
  }
  if (result.total_old_us > 0.0) {
    result.worst_ratio = std::max(
        result.worst_ratio, result.total_new_us / result.total_old_us);
  }
  result.regression = result.worst_ratio > tolerance;
  std::ostringstream summary;
  summary << (result.regression ? "REGRESSION" : "ok") << ": total self "
          << FormatUs(result.total_old_us) << " -> "
          << FormatUs(result.total_new_us) << ", worst significant ratio "
          << AsciiTable::Fmt(result.worst_ratio, 2) << " (tolerance "
          << AsciiTable::Fmt(tolerance, 2) << ")";
  result.summary = summary.str();
  return result;
}

CompareResult CompareBench(const TraceData& old_trace,
                           const TraceData& new_trace, double tolerance) {
  CompareResult result;
  result.bench = true;
  const json::Value& old_bench = old_trace.bench;
  const json::Value& new_bench = new_trace.bench;

  auto add = [&](const std::string& name, double old_value,
                 double new_value, bool gate, bool higher_is_worse) {
    if (old_value <= 0.0 && new_value <= 0.0) return;
    CompareRow row;
    row.name = name;
    row.old_us = old_value;  // Field units, not really µs, for bench rows.
    row.new_us = new_value;
    const double worse_ratio =
        higher_is_worse
            ? (old_value > 0.0 ? new_value / old_value : kHugeRatio)
            : (new_value > 0.0 ? old_value / new_value : kHugeRatio);
    row.ratio = worse_ratio;
    row.significant = gate;
    result.rows.push_back(row);
    if (gate) result.worst_ratio = std::max(result.worst_ratio, worse_ratio);
  };
  add("wall_s", old_bench.GetNumber("wall_s"), new_bench.GetNumber("wall_s"),
      /*gate=*/true, /*higher_is_worse=*/true);
  add("events_per_sec", old_bench.GetNumber("events_per_sec"),
      new_bench.GetNumber("events_per_sec"), /*gate=*/true,
      /*higher_is_worse=*/false);
  add("peak_rss_bytes", old_bench.GetNumber("peak_rss_bytes"),
      new_bench.GetNumber("peak_rss_bytes"), /*gate=*/false,
      /*higher_is_worse=*/true);
  // Serving extras (bench/serve_replay baselines). Informational rows:
  // the replay's wall time is already gated above, and these are noisier
  // than wall — but a latency or hit-rate drift shows up side by side
  // with the training numbers here.
  add("serve_warm_speedup", old_bench.GetNumber("serve_warm_speedup"),
      new_bench.GetNumber("serve_warm_speedup"), /*gate=*/false,
      /*higher_is_worse=*/false);
  add("serve_warm_qps", old_bench.GetNumber("serve_warm_qps"),
      new_bench.GetNumber("serve_warm_qps"), /*gate=*/false,
      /*higher_is_worse=*/false);
  add("serve_p50_ms", old_bench.GetNumber("serve_p50_ms"),
      new_bench.GetNumber("serve_p50_ms"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_p95_ms", old_bench.GetNumber("serve_p95_ms"),
      new_bench.GetNumber("serve_p95_ms"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_p99_ms", old_bench.GetNumber("serve_p99_ms"),
      new_bench.GetNumber("serve_p99_ms"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_cache_hit_rate", old_bench.GetNumber("serve_cache_hit_rate"),
      new_bench.GetNumber("serve_cache_hit_rate"), /*gate=*/false,
      /*higher_is_worse=*/false);
  add("serve_shed_rate", old_bench.GetNumber("serve_shed_rate"),
      new_bench.GetNumber("serve_shed_rate"), /*gate=*/false,
      /*higher_is_worse=*/true);
  // Resilience-layer rows. Degraded responses are cheap but lower
  // fidelity (prior scores, no GRU replay), so a creeping degraded rate
  // means the deadline/breaker path is firing more than it used to;
  // rollbacks mean the health gate pulled a candidate. Shed-reason
  // breakdown disambiguates the aggregate shed rate above.
  add("serve_degraded_rate", old_bench.GetNumber("serve_degraded_rate"),
      new_bench.GetNumber("serve_degraded_rate"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_rollbacks", old_bench.GetNumber("serve_rollbacks"),
      new_bench.GetNumber("serve_rollbacks"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_shed_deadline", old_bench.GetNumber("serve_shed_deadline"),
      new_bench.GetNumber("serve_shed_deadline"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_shed_queue_full", old_bench.GetNumber("serve_shed_queue_full"),
      new_bench.GetNumber("serve_shed_queue_full"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_shed_breaker_open",
      old_bench.GetNumber("serve_shed_breaker_open"),
      new_bench.GetNumber("serve_shed_breaker_open"), /*gate=*/false,
      /*higher_is_worse=*/true);
  // Observability rows (DESIGN.md §13). The stage split attributes an
  // end-to-end p95 drift to queueing vs. scoring; budget consumed and
  // exemplar count track how close the run sailed to its SLOs.
  add("serve_queue_wait_p95_ms",
      old_bench.GetNumber("serve_queue_wait_p95_ms"),
      new_bench.GetNumber("serve_queue_wait_p95_ms"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_score_p95_ms", old_bench.GetNumber("serve_score_p95_ms"),
      new_bench.GetNumber("serve_score_p95_ms"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_slo_budget_consumed",
      old_bench.GetNumber("serve_slo_budget_consumed"),
      new_bench.GetNumber("serve_slo_budget_consumed"), /*gate=*/false,
      /*higher_is_worse=*/true);
  add("serve_exemplars", old_bench.GetNumber("serve_exemplars"),
      new_bench.GetNumber("serve_exemplars"), /*gate=*/false,
      /*higher_is_worse=*/true);
  // Model-quality drift rows (DESIGN.md §14). Window count is
  // informational (it scales with the replay length); flags, the max
  // flagged PSI, and retrain advisories are gated — the bench replay is
  // a steady-state run on one snapshot, so any flag here means either
  // the detector regressed (false positives) or the serving path
  // changed what it feeds the monitor.
  add("drift_windows", old_bench.GetNumber("drift_windows"),
      new_bench.GetNumber("drift_windows"), /*gate=*/false,
      /*higher_is_worse=*/false);
  add("drift_flags", old_bench.GetNumber("drift_flags"),
      new_bench.GetNumber("drift_flags"), /*gate=*/true,
      /*higher_is_worse=*/true);
  add("drift_score", old_bench.GetNumber("drift_score"),
      new_bench.GetNumber("drift_score"), /*gate=*/true,
      /*higher_is_worse=*/true);
  add("retrain_advisory", old_bench.GetNumber("retrain_advisory"),
      new_bench.GetNumber("retrain_advisory"), /*gate=*/true,
      /*higher_is_worse=*/true);
  result.total_old_us = old_bench.GetNumber("wall_s") * 1e6;
  result.total_new_us = new_bench.GetNumber("wall_s") * 1e6;
  result.regression = result.worst_ratio > tolerance;
  std::ostringstream summary;
  summary << (result.regression ? "REGRESSION" : "ok") << ": bench \""
          << new_bench.GetString("bench", "?") << "\" wall "
          << AsciiTable::Fmt(old_bench.GetNumber("wall_s"), 3) << "s -> "
          << AsciiTable::Fmt(new_bench.GetNumber("wall_s"), 3)
          << "s, worst ratio " << AsciiTable::Fmt(result.worst_ratio, 2)
          << " (tolerance " << AsciiTable::Fmt(tolerance, 2) << ")";
  result.summary = summary.str();
  return result;
}

StatusOr<CompareResult> Compare(const TraceData& old_trace,
                                const TraceData& new_trace,
                                double tolerance) {
  if (old_trace.kind != new_trace.kind) {
    return Status::InvalidArgument(
        "cannot compare different artifact kinds (" + old_trace.path +
        " vs " + new_trace.path + ")");
  }
  if (old_trace.kind == InputKind::kBenchBaseline) {
    return CompareBench(old_trace, new_trace, tolerance);
  }
  return CompareTraces(old_trace, new_trace, tolerance);
}

std::string RenderSummary(const TraceData& trace, int top_ops,
                          int top_outliers) {
  std::ostringstream out;
  if (trace.kind == InputKind::kBenchBaseline) {
    out << "bench baseline " << trace.bench.GetString("bench", "?")
        << ": wall " << AsciiTable::Fmt(trace.bench.GetNumber("wall_s"), 3)
        << "s, " << AsciiTable::Fmt(trace.bench.GetNumber("events_per_sec"), 1)
        << " events/s, peak RSS "
        << AsciiTable::Fmt(
               trace.bench.GetNumber("peak_rss_bytes") / (1024.0 * 1024.0), 1)
        << " MiB (build " << trace.build << ")\n";
    return out.str();
  }

  const std::vector<OpStat> ops = SelfTimePerOp(trace);
  out << trace.path << ": "
      << (trace.kind == InputKind::kChromeTrace ? trace.events.size()
                                                : trace.jsonl_ops.size())
      << (trace.kind == InputKind::kChromeTrace ? " events" : " op metrics");
  if (trace.dropped_events > 0) {
    out << " (ring dropped " << trace.dropped_events << " oldest events)";
  }
  out << "\n\n-- self time per op --\n";
  AsciiTable op_table({"op", "count", "self", "total", "mean", "max"});
  int shown = 0;
  for (const OpStat& op : ops) {
    if (shown++ >= top_ops) break;
    op_table.AddRow({op.name, std::to_string(op.count), FormatUs(op.self_us),
                     FormatUs(op.total_us),
                     FormatUs(op.count > 0 ? op.total_us / op.count : 0.0),
                     FormatUs(op.max_us)});
  }
  out << op_table.ToString();

  if (trace.kind == InputKind::kTelemetryJsonl) {
    if (!trace.jsonl_epochs.empty()) {
      out << "\n-- epochs --\n";
      AsciiTable epoch_table(
          {"type", "epoch", "seconds", "events/s", "loss|risk"});
      for (const EpochRecord& epoch : trace.jsonl_epochs) {
        epoch_table.AddRow({epoch.type, std::to_string(epoch.epoch),
                            AsciiTable::Fmt(epoch.seconds, 3),
                            AsciiTable::Fmt(epoch.events_per_sec, 1),
                            AsciiTable::Fmt(epoch.loss, 4)});
      }
      out << epoch_table.ToString();
    }
    return out.str();
  }

  const std::vector<PhaseRow> phases = EpochPhaseBreakdown(trace);
  if (!phases.empty()) {
    out << "\n-- per-epoch phases --\n";
    AsciiTable phase_table({"epoch", "phase", "count", "total"});
    for (const PhaseRow& row : phases) {
      phase_table.AddRow({std::to_string(row.epoch), row.name,
                          std::to_string(row.count),
                          FormatUs(row.total_us)});
    }
    out << phase_table.ToString();
  }

  const std::vector<AnalyzerEvent> outliers =
      SlowestSpans(trace, "batch", top_outliers);
  if (!outliers.empty()) {
    out << "\n-- slowest batches --\n";
    AsciiTable outlier_table({"span", "tid", "ts", "dur", "epoch", "batch"});
    for (const AnalyzerEvent& event : outliers) {
      outlier_table.AddRow(
          {event.name, std::to_string(event.tid), FormatUs(event.ts_us),
           FormatUs(event.dur_us),
           std::to_string(static_cast<int>(event.Arg("epoch", -1))),
           std::to_string(static_cast<int>(event.Arg("batch", -1)))});
    }
    out << outlier_table.ToString();
  }

  int instants = 0;
  for (const AnalyzerEvent& event : trace.events) {
    if (event.phase == 'i') ++instants;
  }
  if (instants > 0) {
    out << "\n" << instants
        << " instant event(s) (bad steps / negative-risk clips)\n";
  }
  return out.str();
}

std::string RenderCompare(const CompareResult& result) {
  std::ostringstream out;
  AsciiTable table({"name", "old", "new", "ratio", "gates"});
  for (const CompareRow& row : result.rows) {
    // Bench rows hold raw baseline fields (seconds, events/s, bytes)
    // rather than microseconds, so print them unscaled.
    const std::string old_str = result.bench ? AsciiTable::Fmt(row.old_us, 3)
                                             : FormatUs(row.old_us);
    const std::string new_str = result.bench ? AsciiTable::Fmt(row.new_us, 3)
                                             : FormatUs(row.new_us);
    table.AddRow({row.name, old_str, new_str,
                  row.ratio >= kHugeRatio ? "new"
                                          : AsciiTable::Fmt(row.ratio, 2),
                  row.significant ? "yes" : ""});
  }
  out << table.ToString() << result.summary << "\n";
  return out.str();
}

}  // namespace uae::tools
