// uae_trace: offline analyzer for the repo's perf artifacts.
//
//   uae_trace <trace>                     summary tables
//   uae_trace --validate <trace>          nesting check only (CI gate)
//   uae_trace --compare <old> <new>       regression diff, nonzero on fail
//
// <trace> may be a Chrome trace-event JSON (UAE_TRACE_PATH output), a
// telemetry JSONL stream (UAE_BENCH_TELEMETRY output), or a
// BENCH_<name>.json baseline. --compare requires both sides to be the
// same kind. Exit codes: 0 ok, 1 regression / invalid trace, 2 usage or
// I/O error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace_analysis.h"

namespace {

constexpr double kDefaultTolerance = 1.3;

int Usage() {
  std::fprintf(stderr,
               "usage: uae_trace [--top N] <trace>\n"
               "       uae_trace --validate <trace>\n"
               "       uae_trace --compare <old> <new> [--tolerance R]\n");
  return 2;
}

uae::StatusOr<uae::tools::TraceData> LoadOrExplain(const std::string& path) {
  uae::StatusOr<uae::tools::TraceData> trace = uae::tools::Load(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "uae_trace: %s\n",
                 trace.status().message().c_str());
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  bool compare = false;
  int top = 20;
  double tolerance = kDefaultTolerance;
  if (const char* env = std::getenv("UAE_BENCH_TOLERANCE")) {
    tolerance = std::atof(env);
  }
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "uae_trace: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (tolerance <= 0.0) {
    std::fprintf(stderr, "uae_trace: tolerance must be positive\n");
    return 2;
  }

  if (compare) {
    if (paths.size() != 2) return Usage();
    uae::StatusOr<uae::tools::TraceData> old_trace = LoadOrExplain(paths[0]);
    if (!old_trace.ok()) return 2;
    uae::StatusOr<uae::tools::TraceData> new_trace = LoadOrExplain(paths[1]);
    if (!new_trace.ok()) return 2;
    uae::StatusOr<uae::tools::CompareResult> result = uae::tools::Compare(
        old_trace.value(), new_trace.value(), tolerance);
    if (!result.ok()) {
      std::fprintf(stderr, "uae_trace: %s\n",
                   result.status().message().c_str());
      return 2;
    }
    std::fputs(uae::tools::RenderCompare(result.value()).c_str(), stdout);
    return result.value().regression ? 1 : 0;
  }

  if (paths.size() != 1) return Usage();
  uae::StatusOr<uae::tools::TraceData> trace = LoadOrExplain(paths[0]);
  if (!trace.ok()) return 2;

  if (trace.value().kind == uae::tools::InputKind::kChromeTrace) {
    const uae::Status nesting = uae::tools::ValidateNesting(trace.value());
    if (!nesting.ok()) {
      std::fprintf(stderr, "uae_trace: nesting violation: %s\n",
                   nesting.message().c_str());
      return 1;
    }
    if (validate) {
      std::printf("%s: %zu events, nesting ok\n", paths[0].c_str(),
                  trace.value().events.size());
      return 0;
    }
  } else if (validate) {
    std::fprintf(stderr,
                 "uae_trace: --validate needs a Chrome trace, got %s\n",
                 paths[0].c_str());
    return 2;
  }

  std::fputs(uae::tools::RenderSummary(trace.value(), top, /*top_outliers=*/5)
                 .c_str(),
             stdout);
  return 0;
}
