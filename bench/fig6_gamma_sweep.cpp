// Figure 6 reproduction: the re-weighting parameter gamma.
//   (a) the w = 1 - (alpha+1)^(-gamma) curves for several gamma values
//   (b)/(c) AUC and GAUC of DCN-V2 + UAE as a function of gamma, with the
//           plain DCN-V2 as the horizontal reference line.
//
// Paper shape: performance rises to an optimum and then flattens as
// gamma grows (w -> 1 recovers the unweighted base model); excessively
// small gamma discards passive data and hurts. The optimum's location
// depends on the alpha-hat distribution — gamma* = 15 on the paper's log,
// smaller here (see EXPERIMENTS.md).

#include "bench_common.h"

#include <vector>

#include "attention/reweight.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "fig6_gamma_sweep", "Figure 6", "re-weighting parameter gamma");

  // (a) The re-weight curves themselves (pure function of Eq. 19).
  std::printf("\n(a) w(alpha) for several gamma\n");
  AsciiTable curves({"alpha", "g=0.5", "g=1", "g=2", "g=5", "g=15"});
  CsvWriter curve_csv({"alpha", "g0.5", "g1", "g2", "g5", "g15"});
  for (float alpha = 0.0f; alpha <= 1.001f; alpha += 0.125f) {
    std::vector<std::string> row = {AsciiTable::Fmt(alpha, 3)};
    std::vector<double> num_row = {alpha};
    for (float gamma : {0.5f, 1.0f, 2.0f, 5.0f, 15.0f}) {
      const float w = attention::ReweightFunction(alpha, gamma);
      row.push_back(AsciiTable::Fmt(w, 3));
      num_row.push_back(w);
    }
    curves.AddRow(row);
    curve_csv.AddNumericRow(num_row);
  }
  std::printf("%s", curves.ToString().c_str());
  bench::ExportCsv(curve_csv, "fig6a_reweight_curves");

  // (b)/(c) Downstream performance vs gamma.
  const int seeds = bench::NumSeeds();
  const data::Dataset dataset =
      data::GenerateDataset(bench::ProductConfig(), bench::kDatasetSeed);
  models::TrainConfig train_config;
  train_config.epochs = bench::TrainEpochs();

  // One UAE fit per seed; gamma only changes the weight mapping.
  std::vector<core::AttentionArtifacts> artifacts;
  for (int run = 0; run < seeds; ++run) {
    artifacts.push_back(core::FitAttention(
        dataset, attention::AttentionMethod::kUae, 1.0f, 100 + 1000ULL * run));
  }

  core::CellSpec base_spec;
  base_spec.model = models::ModelKind::kDcnV2;
  base_spec.num_seeds = seeds;
  base_spec.train_config = train_config;
  const core::CellResult base = core::RunCell(dataset, base_spec);
  std::printf("\nDCN-V2 base: AUC %.2f, GAUC %.2f (dashed reference)\n",
              100 * base.auc.mean, 100 * base.gauc.mean);

  AsciiTable table({"gamma", "AUC", "GAUC", "AUC-base", "GAUC-base"});
  CsvWriter csv({"gamma", "auc", "gauc", "base_auc", "base_gauc"});
  for (float gamma : {0.25f, 0.5f, 1.0f, 2.0f, 4.0f, 15.0f}) {
    std::vector<data::EventScores> weights;
    std::vector<const data::EventScores*> shared;
    for (const auto& a : artifacts) {
      weights.push_back(
          attention::BuildSampleWeights(dataset, a.alpha, gamma));
    }
    for (const auto& w : weights) shared.push_back(&w);

    core::CellSpec spec = base_spec;
    spec.method = attention::AttentionMethod::kUae;
    spec.gamma = gamma;
    const core::CellResult cell = core::RunCell(dataset, spec, &shared);
    table.AddRow({AsciiTable::Fmt(gamma, 2),
                  AsciiTable::Fmt(100 * cell.auc.mean, 2),
                  AsciiTable::Fmt(100 * cell.gauc.mean, 2),
                  AsciiTable::Fmt(100 * (cell.auc.mean - base.auc.mean), 2),
                  AsciiTable::Fmt(100 * (cell.gauc.mean - base.gauc.mean),
                                  2)});
    csv.AddNumericRow({gamma, cell.auc.mean, cell.gauc.mean, base.auc.mean,
                       base.gauc.mean});
    std::printf("  [gamma=%.2f done]\n", gamma);
  }
  std::printf("%s", table.ToString().c_str());
  bench::ExportCsv(csv, "fig6_gamma_sweep");
  return bench::Finish();
}
