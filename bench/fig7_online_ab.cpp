// Figure 7 reproduction: 7-day online A/B test.
//
// Control group: a trained DCN-V2 ranker. Treatment group: the same model
// trained with UAE sample weights. Both serve live playlists to the same
// simulated user population; we report the daily relative uplift in play
// count and play time.
//
// Paper shape: positive uplift on every day, ~2% on average.

#include "bench_common.h"

#include <memory>

#include "common/table.h"
#include "core/pipeline.h"
#include "data/world.h"
#include "models/registry.h"
#include "models/trainer.h"
#include "sim/ab_test.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "fig7_online_ab", "Figure 7", "7-day online A/B test on the serving simulator");

  const data::GeneratorConfig cfg = bench::ProductConfig();
  const data::World world(cfg, bench::kDatasetSeed);
  const data::Dataset dataset =
      data::GenerateDataset(cfg, bench::kDatasetSeed);

  models::ModelConfig model_config;
  models::TrainConfig train_config;
  train_config.epochs = bench::TrainEpochs();
  train_config.seed = 100;

  std::printf("training control (DCN-V2)...\n");
  Rng control_rng(train_config.seed);
  auto control = models::CreateRecommender(
      models::ModelKind::kDcnV2, &control_rng, dataset.schema, model_config);
  models::TrainRecommender(control.get(), dataset, nullptr, train_config);

  std::printf("training treatment (DCN-V2 + UAE)...\n");
  const core::AttentionArtifacts attention = core::FitAttention(
      dataset, attention::AttentionMethod::kUae, 0.5f, train_config.seed);
  Rng treatment_rng(train_config.seed);
  auto treatment = models::CreateRecommender(
      models::ModelKind::kDcnV2, &treatment_rng, dataset.schema,
      model_config);
  models::TrainRecommender(treatment.get(), dataset, &attention.weights,
                           train_config);

  sim::AbTestConfig ab_config;
  ab_config.days = 7;
  ab_config.sessions_per_day = bench::PaperScale() ? 1200 : 400;
  std::printf("serving %d requests/day/group for %d days...\n",
              ab_config.sessions_per_day, ab_config.days);
  const sim::AbTestResult result =
      sim::RunAbTest(world, control.get(), treatment.get(), ab_config);

  AsciiTable table({"day", "play count uplift %", "play time uplift %"});
  CsvWriter csv({"day", "play_count_uplift_pct", "play_time_uplift_pct"});
  for (const sim::AbDayResult& day : result.days) {
    table.AddRow({std::to_string(day.day),
                  AsciiTable::Fmt(day.play_count_uplift_pct, 2),
                  AsciiTable::Fmt(day.play_time_uplift_pct, 2)});
    csv.AddNumericRow({static_cast<double>(day.day),
                       day.play_count_uplift_pct,
                       day.play_time_uplift_pct});
  }
  table.AddSeparator();
  table.AddRow({"avg", AsciiTable::Fmt(result.avg_play_count_uplift_pct, 2),
                AsciiTable::Fmt(result.avg_play_time_uplift_pct, 2)});
  std::printf("%s", table.ToString().c_str());
  std::printf("paper reference: both uplifts average above 2%%.\n");
  bench::ExportCsv(csv, "fig7_online_ab");

  const bool shape_ok = result.avg_play_count_uplift_pct > 0.0 &&
                        result.avg_play_time_uplift_pct > 0.0;
  std::printf("\nshape check: positive average uplift on both metrics: %s\n",
              shape_ok ? "PASS" : "mixed");
  return bench::Finish();
}
