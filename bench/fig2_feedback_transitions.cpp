// Figure 2 reproduction: transition probabilities of user feedback types.
//   (a) 2x2 active/passive transition matrix + marginals
//   (b) P(active) for the most/least active length-6 history patterns
//   (c) P(active) vs. the number of active actions in the recent history
//
// Paper reference points (Huawei Music log): marginal active 8.76%,
// P(a|a) = 55.88%, P(a|p) = 4.88%, and monotone growth in (b)/(c).

#include "bench_common.h"

#include "common/table.h"
#include "data/feedback_stats.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "fig2_feedback_transitions", "Figure 2", "feedback transition statistics");

  data::GeneratorConfig cfg = bench::ProductConfig();
  cfg.num_sessions *= 2;  // Statistics only: cheap, use more sessions.
  const data::Dataset dataset =
      data::GenerateDataset(cfg, bench::kDatasetSeed);
  const data::FeedbackStats stats = data::ComputeFeedbackStats(dataset);

  std::printf("\n(a) transition matrix (rows: current, cols: next)\n");
  AsciiTable matrix({"", "active", "passive"});
  matrix.AddRow({"active", AsciiTable::Fmt(stats.transition[0][0], 4),
                 AsciiTable::Fmt(stats.transition[0][1], 4)});
  matrix.AddRow({"passive", AsciiTable::Fmt(stats.transition[1][0], 4),
                 AsciiTable::Fmt(stats.transition[1][1], 4)});
  std::printf("%s", matrix.ToString().c_str());
  std::printf("marginal: active %.4f, passive %.4f   (paper: 0.0876 / 0.9124)\n",
              stats.marginal_active, stats.marginal_passive);
  std::printf("paper transition reference: P(a|a)=0.5588, P(a|p)=0.0488\n");

  std::printf("\n(b) P(active) by recent length-%d feedback pattern "
              "(oldest..latest, a=active)\n",
              stats.pattern_length);
  AsciiTable patterns({"pattern", "P(active)", "support"});
  for (const auto& p : stats.patterns) {
    patterns.AddRow({p.pattern, AsciiTable::Fmt(p.p_active, 4),
                     std::to_string(p.count)});
  }
  std::printf("%s", patterns.ToString().c_str());

  std::printf("\n(c) P(active) by # active actions in the last %d events\n",
              stats.pattern_length);
  AsciiTable recent({"#active", "P(active)", "support"});
  CsvWriter csv({"recent_active_count", "p_active", "support"});
  for (size_t k = 0; k < stats.p_active_by_recent_count.size(); ++k) {
    recent.AddRow({std::to_string(k),
                   AsciiTable::Fmt(stats.p_active_by_recent_count[k], 4),
                   std::to_string(stats.recent_count_support[k])});
    csv.AddNumericRow({static_cast<double>(k),
                       stats.p_active_by_recent_count[k],
                       static_cast<double>(stats.recent_count_support[k])});
  }
  std::printf("%s", recent.ToString().c_str());
  bench::ExportCsv(csv, "fig2_recent_active");

  const bool shape_ok =
      stats.transition[0][0] > 4.0 * stats.transition[1][0] &&
      stats.p_active_by_recent_count.front() <
          stats.p_active_by_recent_count.back();
  std::printf("\nshape check (active->active >> passive->active, monotone "
              "(c) curve): %s\n",
              shape_ok ? "PASS" : "FAIL");
  const int gate = bench::Finish();
  return shape_ok ? gate : 1;
}
