// Serving replay baseline: the online engine under simulated traffic.
//
// Closed loop: every request replayed twice — cold (full session-tail
// GRU replay) then warm (cached hidden state) — so the cold/warm ratio
// isolates what the session-state cache buys. Open loop: the same
// requests offered at 3x the measured warm capacity with 10ms deadlines;
// the engine must shed the excess instead of stalling the clients.
//
// The committed BENCH_serve_replay.json gates wall time via the usual
// --check-against machinery and records warm speedup, latency
// percentiles, cache hit-rate, and shed-rate as baseline extras
// (surfaced side by side in `uae_trace --compare`).
//
// `--shards N` (N > 1) reruns the same load through a consistent-hash
// ShardRouter over N engines — every request crossing the binary wire
// protocol both ways — on a multi-million synthetic-user key space,
// with the rollout phase promoting the whole fleet shard by shard. The
// run then tags its baseline BENCH_serve_replay_shard<N>.json (via
// UAE_BENCH_VARIANT, unless already set), so 1- and 4-shard baselines
// are committed and gated side by side.

#include "bench_common.h"

#include <cstdlib>
#include <cstring>

#include "common/table.h"
#include "serve/replay.h"

int main(int argc, char** argv) {
  using namespace uae;
  int shards = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) shards = std::atoi(argv[i + 1]);
  }
  if (shards > 1 && std::getenv("UAE_BENCH_VARIANT") == nullptr) {
    // Sharded runs get their own committed baseline file.
    setenv("UAE_BENCH_VARIANT", ("shard" + std::to_string(shards)).c_str(),
           /*overwrite=*/0);
  }
  bench::Banner(argc, argv, "serve_replay", "Serving replay",
                "online engine throughput/latency under simulated traffic");

  serve::ReplayConfig config;
  config.world = data::GeneratorConfig::ProductPreset();
  config.world.num_sessions = 200;  // The replay only needs the world.
  config.requests = bench::PaperScale() ? 512 : 192;
  config.history_length = 96;
  config.candidates = 10;
  config.client_threads = 8;
  // Latency-focused engine: dispatch immediately, never linger.
  config.engine.max_wait_us = 0;
  // Stage through real checkpoint files: the bench then also covers the
  // UAECKPT2 load + architecture-fingerprint path of a rollout.
  config.checkpoint_dir = "bench_out";
  config.offered_qps_factor = 3.0;
  // Long enough that issuing at 3x capacity drifts the schedule well
  // past the deadline — that drift, not queue depth, is what sheds when
  // clients block on their own responses.
  config.open_loop_requests = 8 * config.requests;
  config.deadline_ms = 10;
  // Resilience phase: after the closed loop, promote a functionally
  // identical candidate through a full canary -> ramp -> full rollout
  // under live traffic, with shed retries on. The baseline then carries
  // degraded-rate and rollback-count — both should stay pinned at zero
  // on a healthy serve path, so any drift is a regression signal.
  config.exercise_rollout = true;
  config.retries = 2;
  // Observability on, the production shape: Prometheus export kept
  // fresh through the run, exemplar slowlog armed, SLO tracking with
  // latency bounds derived from the deadline. The baseline extras below
  // then watch the observability plane itself for drift — the 1.3x
  // wall-time gate doubles as the "observing the engine is not allowed
  // to slow the engine" check.
  config.metrics_export_path = "bench_out/serve_replay_metrics.prom";
  config.slowlog_path = "bench_out/serve_replay_slowlog.jsonl";
  config.slo = true;
  // Model-quality drift monitoring on too (DESIGN.md §14): one snapshot
  // serving a stationary world, so the model-signal windows must stay
  // quiet through the closed loop — the drift_model_flags_closed shape
  // check below. (Flags during/after the 3x open loop are allowed: the
  // shed wave IS a skip-rate distribution shift, and deadline shedding
  // biases which requests get scored at all.) The 1.3x wall gate
  // doubles as the drift-plane overhead budget.
  config.drift = true;
  config.drift_advisory_path = "bench_out/serve_replay_drift.jsonl";
  // Sharded mode: route through the consistent-hash fleet with the wire
  // protocol in the path, on a production-scale synthetic key space
  // (the ring sees millions of distinct users; the feature payloads
  // still come from the small simulated world).
  config.shards = shards;
  if (shards > 1) config.synthetic_users = 2'000'000;

  std::printf("replaying %d requests (history %d, %d candidates) on "
              "%d shard%s, then offering 3x warm capacity...\n",
              config.requests, config.history_length, config.candidates,
              shards, shards == 1 ? "" : "s");
  const StatusOr<serve::ReplayReport> replayed = serve::RunReplay(config);
  if (!replayed.ok()) {
    std::printf("replay failed: %s\n", replayed.status().ToString().c_str());
    return 1;
  }
  const serve::ReplayReport& r = replayed.value();

  AsciiTable table({"metric", "value"});
  table.AddRow({"cold pass (s)", AsciiTable::Fmt(r.cold_seconds, 3)});
  table.AddRow({"warm pass (s)", AsciiTable::Fmt(r.warm_seconds, 3)});
  table.AddRow({"warm speedup", AsciiTable::Fmt(r.warm_speedup, 1) + "x"});
  table.AddRow({"warm throughput (req/s)", AsciiTable::Fmt(r.warm_qps, 1)});
  table.AddRow({"warm p50 (ms)", AsciiTable::Fmt(r.p50_ms, 2)});
  table.AddRow({"warm p95 (ms)", AsciiTable::Fmt(r.p95_ms, 2)});
  table.AddRow({"warm p99 (ms)", AsciiTable::Fmt(r.p99_ms, 2)});
  table.AddRow({"cache hit rate", AsciiTable::Fmt(r.cache_hit_rate, 3)});
  table.AddRow({"offered QPS", AsciiTable::Fmt(r.offered_qps, 1)});
  table.AddRow({"achieved QPS", AsciiTable::Fmt(r.achieved_qps, 1)});
  table.AddRow({"shed rate", AsciiTable::Fmt(r.shed_rate, 3)});
  table.AddRow({"degraded rate", AsciiTable::Fmt(r.degraded_rate, 3)});
  table.AddRow({"rollout finished", r.rollout_stage});
  table.AddRow({"rollbacks", AsciiTable::Fmt(double(r.rollout_rollbacks), 0)});
  table.AddRow({"queue wait p95 (ms)", AsciiTable::Fmt(r.queue_wait_p95_ms, 2)});
  table.AddRow({"score p95 (ms)", AsciiTable::Fmt(r.score_p95_ms, 2)});
  table.AddRow({"slo budget consumed", AsciiTable::Fmt(r.slo_budget_consumed, 3)});
  table.AddRow({"exemplars", AsciiTable::Fmt(double(r.exemplars), 0)});
  table.AddRow({"drift windows", AsciiTable::Fmt(double(r.drift_windows), 0)});
  table.AddRow({"drift flags", AsciiTable::Fmt(double(r.drift_flags), 0)});
  table.AddRow({"drift model flags",
                AsciiTable::Fmt(double(r.drift_model_flags), 0)});
  table.AddRow({"drift model flags (closed loop)",
                AsciiTable::Fmt(double(r.drift_model_flags_closed), 0)});
  table.AddRow({"drift score", AsciiTable::Fmt(r.drift_score, 3)});
  table.AddRow({"retrain advisories",
                AsciiTable::Fmt(double(r.drift_advisories), 0)});
  if (r.shards > 1) {
    table.AddRow({"shards", AsciiTable::Fmt(double(r.shards), 0)});
    table.AddRow({"shard balance",
                  AsciiTable::Fmt(r.shard_balance, 2) + "x uniform"});
    table.AddRow({"wire tx (MiB)",
                  AsciiTable::Fmt(r.wire_bytes_tx / (1024.0 * 1024.0), 1)});
    table.AddRow({"wire rx (MiB)",
                  AsciiTable::Fmt(r.wire_bytes_rx / (1024.0 * 1024.0), 1)});
    table.AddRow({"wire rejects",
                  AsciiTable::Fmt(double(r.wire_rejects), 0)});
  }
  std::printf("%s", table.ToString().c_str());

  CsvWriter csv({"metric", "value"});
  csv.AddRow({"cold_seconds", AsciiTable::Fmt(r.cold_seconds, 4)});
  csv.AddRow({"warm_seconds", AsciiTable::Fmt(r.warm_seconds, 4)});
  csv.AddRow({"warm_speedup", AsciiTable::Fmt(r.warm_speedup, 2)});
  csv.AddRow({"warm_qps", AsciiTable::Fmt(r.warm_qps, 1)});
  csv.AddRow({"p50_ms", AsciiTable::Fmt(r.p50_ms, 3)});
  csv.AddRow({"p95_ms", AsciiTable::Fmt(r.p95_ms, 3)});
  csv.AddRow({"p99_ms", AsciiTable::Fmt(r.p99_ms, 3)});
  csv.AddRow({"cache_hit_rate", AsciiTable::Fmt(r.cache_hit_rate, 3)});
  csv.AddRow({"offered_qps", AsciiTable::Fmt(r.offered_qps, 1)});
  csv.AddRow({"achieved_qps", AsciiTable::Fmt(r.achieved_qps, 1)});
  csv.AddRow({"shed_rate", AsciiTable::Fmt(r.shed_rate, 3)});
  csv.AddRow({"degraded_rate", AsciiTable::Fmt(r.degraded_rate, 3)});
  csv.AddRow({"rollbacks", AsciiTable::Fmt(double(r.rollout_rollbacks), 0)});
  csv.AddRow({"queue_wait_p95_ms", AsciiTable::Fmt(r.queue_wait_p95_ms, 3)});
  csv.AddRow({"score_p95_ms", AsciiTable::Fmt(r.score_p95_ms, 3)});
  csv.AddRow(
      {"slo_budget_consumed", AsciiTable::Fmt(r.slo_budget_consumed, 4)});
  csv.AddRow({"exemplars", AsciiTable::Fmt(double(r.exemplars), 0)});
  csv.AddRow({"drift_windows", AsciiTable::Fmt(double(r.drift_windows), 0)});
  csv.AddRow({"drift_flags", AsciiTable::Fmt(double(r.drift_flags), 0)});
  csv.AddRow({"drift_model_flags",
              AsciiTable::Fmt(double(r.drift_model_flags), 0)});
  csv.AddRow({"drift_model_flags_closed",
              AsciiTable::Fmt(double(r.drift_model_flags_closed), 0)});
  csv.AddRow({"drift_score", AsciiTable::Fmt(r.drift_score, 3)});
  csv.AddRow({"retrain_advisory",
              AsciiTable::Fmt(double(r.drift_advisories), 0)});
  if (r.shards > 1) {
    csv.AddRow({"shards", AsciiTable::Fmt(double(r.shards), 0)});
    csv.AddRow({"shard_balance", AsciiTable::Fmt(r.shard_balance, 3)});
    csv.AddRow({"wire_bytes_tx", AsciiTable::Fmt(double(r.wire_bytes_tx), 0)});
    csv.AddRow({"wire_bytes_rx", AsciiTable::Fmt(double(r.wire_bytes_rx), 0)});
    csv.AddRow({"wire_rejects", AsciiTable::Fmt(double(r.wire_rejects), 0)});
  }
  bench::ExportCsv(csv, "serve_replay");

  bench::RecordBaselineExtra("serve_warm_speedup",
                             telemetry::JsonNumber(r.warm_speedup));
  bench::RecordBaselineExtra("serve_warm_qps",
                             telemetry::JsonNumber(r.warm_qps));
  bench::RecordBaselineExtra("serve_p50_ms",
                             telemetry::JsonNumber(r.p50_ms));
  bench::RecordBaselineExtra("serve_p95_ms",
                             telemetry::JsonNumber(r.p95_ms));
  bench::RecordBaselineExtra("serve_p99_ms",
                             telemetry::JsonNumber(r.p99_ms));
  bench::RecordBaselineExtra("serve_cache_hit_rate",
                             telemetry::JsonNumber(r.cache_hit_rate));
  bench::RecordBaselineExtra("serve_shed_rate",
                             telemetry::JsonNumber(r.shed_rate));
  bench::RecordBaselineExtra("serve_degraded_rate",
                             telemetry::JsonNumber(r.degraded_rate));
  bench::RecordBaselineExtra(
      "serve_rollbacks",
      telemetry::JsonNumber(static_cast<double>(r.rollout_rollbacks)));
  bench::RecordBaselineExtra("serve_queue_wait_p95_ms",
                             telemetry::JsonNumber(r.queue_wait_p95_ms));
  bench::RecordBaselineExtra("serve_score_p95_ms",
                             telemetry::JsonNumber(r.score_p95_ms));
  bench::RecordBaselineExtra("serve_slo_budget_consumed",
                             telemetry::JsonNumber(r.slo_budget_consumed));
  bench::RecordBaselineExtra(
      "serve_exemplars",
      telemetry::JsonNumber(static_cast<double>(r.exemplars)));
  bench::RecordBaselineExtra(
      "drift_windows",
      telemetry::JsonNumber(static_cast<double>(r.drift_windows)));
  bench::RecordBaselineExtra(
      "drift_flags",
      telemetry::JsonNumber(static_cast<double>(r.drift_flags)));
  bench::RecordBaselineExtra("drift_score",
                             telemetry::JsonNumber(r.drift_score));
  bench::RecordBaselineExtra(
      "retrain_advisory",
      telemetry::JsonNumber(static_cast<double>(r.drift_advisories)));
  if (r.shards > 1) {
    bench::RecordBaselineExtra(
        "serve_shards", telemetry::JsonNumber(static_cast<double>(r.shards)));
    bench::RecordBaselineExtra("serve_shard_balance",
                               telemetry::JsonNumber(r.shard_balance));
    bench::RecordBaselineExtra(
        "serve_wire_bytes_tx",
        telemetry::JsonNumber(static_cast<double>(r.wire_bytes_tx)));
    bench::RecordBaselineExtra(
        "serve_wire_rejects",
        telemetry::JsonNumber(static_cast<double>(r.wire_rejects)));
  }

  // Sharded runs pay a per-request constant — wire framing both ways
  // plus the fan-out across engines — on BOTH passes, which dilutes the
  // cold/warm ratio even though the cache saves exactly as much GRU
  // replay. The floor drops accordingly; the cache must still clearly
  // win.
  const bool warm_ok = r.warm_speedup >= (r.shards > 1 ? 1.5 : 5.0);
  const bool shed_ok = r.open_shed > 0 && r.open_completed > 0;
  // A healthy, identical candidate must ride the whole ladder without
  // the health gate firing.
  const bool rollout_ok = r.rollout_stage == "idle" &&
                          r.rollout_rollbacks == 0;
  // One stationary snapshot: the model-signal windows must stay quiet
  // through the closed loop. The check deliberately stops there — the
  // open loop sheds on wall-clock deadlines, which biases WHICH requests
  // get scored run to run, and that composition shift can legitimately
  // register as alpha/score drift in the scored subpopulation. Total
  // model flags stay informational (table/CSV rows above).
  const bool drift_ok = r.drift_model_flags_closed == 0;
  // Sharded shape (shards > 1): every shard took traffic, the ring
  // spread keys within 2x of the uniform share on the synthetic key
  // space, and the wire never rejected a frame end to end.
  bool shards_ok = true;
  if (r.shards > 1) {
    shards_ok = static_cast<int>(r.shard_requests.size()) == r.shards &&
                r.shard_balance > 0.0 && r.shard_balance < 2.0 &&
                r.wire_rejects == 0;
    for (const int64_t routed : r.shard_requests) {
      if (routed <= 0) shards_ok = false;
    }
  }
  std::printf("\nshape check: warm cache >= %.1fx over full replay: %s\n",
              r.shards > 1 ? 1.5 : 5.0, warm_ok ? "PASS" : "FAIL");
  std::printf("shape check: overload sheds while still serving: %s\n",
              shed_ok ? "PASS" : "FAIL");
  std::printf("shape check: identical candidate promotes cleanly: %s\n",
              rollout_ok ? "PASS" : "FAIL");
  std::printf("shape check: drift quiet through the closed loop: %s\n",
              drift_ok ? "PASS" : "FAIL");
  if (r.shards > 1) {
    std::printf("shape check: fleet balanced, zero wire rejects: %s\n",
                shards_ok ? "PASS" : "FAIL");
  }
  const int finish = bench::Finish();
  return (warm_ok && shed_ok && rollout_ok && drift_ok && shards_ok)
             ? finish
             : 1;
}
