#ifndef UAE_BENCH_BENCH_COMMON_H_
#define UAE_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench prints the paper-style table/series to stdout and exports
// the raw numbers as CSV under bench_out/. Scale knobs come from the
// environment so the default `for b in build/bench/*; do $b; done` run
// finishes on a laptop while UAE_BENCH_SCALE=paper reruns at full size:
//
//   UAE_BENCH_SCALE      small (default) | paper
//   UAE_BENCH_SEEDS      override the per-cell seed count
//   UAE_BENCH_TELEMETRY  directory: each bench streams a structured
//                        <name>.jsonl trajectory + run manifest there
//                        (first-class instrumentation instead of printf
//                        scraping; see DESIGN.md §8)
//   UAE_LOG_LEVEL        debug|info|warn|error (wins over the default
//                        bench quieting)

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/csv.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "data/generator.h"

namespace uae::bench {

inline int GetEnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool PaperScale() {
  const char* value = std::getenv("UAE_BENCH_SCALE");
  return value != nullptr && std::string(value) == "paper";
}

/// Seeds per experiment cell (paper: 5; small default 2 keeps the full
/// single-core bench sweep under an hour — raise via UAE_BENCH_SEEDS).
inline int NumSeeds() {
  return GetEnvInt("UAE_BENCH_SEEDS", PaperScale() ? 5 : 2);
}

/// Training epochs for downstream models.
inline int TrainEpochs() { return PaperScale() ? 8 : 6; }

/// Eq. 19 re-weighting parameter used by the table benches. Default is
/// the small-scale validation optimum from fig6_gamma_sweep; override
/// with UAE_BENCH_GAMMA.
inline float Gamma() {
  const char* value = std::getenv("UAE_BENCH_GAMMA");
  return value != nullptr ? static_cast<float>(std::atof(value)) : 0.5f;
}

/// The two evaluation datasets at bench scale.
inline data::GeneratorConfig ProductConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = PaperScale() ? 6000 : 2000;
  return cfg;
}

inline data::GeneratorConfig ThirtyMusicConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ThirtyMusicPreset();
  cfg.num_sessions = PaperScale() ? 5000 : 1600;
  return cfg;
}

/// Fixed dataset seed: tables compare methods on one dataset, seeds vary
/// model training (matching the paper's protocol).
inline constexpr uint64_t kDatasetSeed = 42;

/// Writes a CSV next to the binary outputs and reports the path.
inline void ExportCsv(const CsvWriter& csv, const std::string& name) {
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/" + name + ".csv";
  const Status status = csv.WriteFile(path);
  if (status.ok()) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] export failed: %s\n", status.ToString().c_str());
  }
}

/// Points the process telemetry sink at <dir>/<slug(experiment)>.jsonl
/// when UAE_BENCH_TELEMETRY names a directory. UAE_TELEMETRY_PATH (one
/// explicit file) still works for single-bench runs and wins if the
/// directory flag is unset. A final metrics snapshot is flushed at exit.
inline void MaybeEnableTelemetry(const char* experiment) {
  const char* dir = std::getenv("UAE_BENCH_TELEMETRY");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string slug;
  for (const char* p = experiment; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    slug += std::isalnum(c) ? static_cast<char>(std::tolower(c)) : '_';
  }
  std::filesystem::create_directories(dir);
  const std::string path = std::string(dir) + "/" + slug + ".jsonl";
  if (!telemetry::ConfigureSink(path)) {
    std::printf("[telemetry] cannot open %s\n", path.c_str());
    return;
  }
  std::printf("[telemetry] %s\n", path.c_str());
  std::atexit(+[] { telemetry::EmitMetricsSnapshot("bench_exit"); });
}

/// Common banner so bench output is self-describing.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("scale=%s seeds=%d\n", PaperScale() ? "paper" : "small",
              NumSeeds());
  std::printf("==============================================================\n");
  // Benches quiet the log by default, but an explicit UAE_LOG_LEVEL wins.
  if (!LogLevelFromEnv()) SetLogLevel(LogLevel::kWarning);
  MaybeEnableTelemetry(experiment);
}

}  // namespace uae::bench

#endif  // UAE_BENCH_BENCH_COMMON_H_
