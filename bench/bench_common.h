#ifndef UAE_BENCH_BENCH_COMMON_H_
#define UAE_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench prints the paper-style table/series to stdout and exports
// the raw numbers as CSV under bench_out/. Scale knobs come from the
// environment so the default `for b in build/bench/*; do $b; done` run
// finishes on a laptop while UAE_BENCH_SCALE=paper reruns at full size:
//
//   UAE_BENCH_SCALE      small (default) | paper
//   UAE_BENCH_SEEDS      override the per-cell seed count
//   UAE_BENCH_TELEMETRY  directory: each bench streams a structured
//                        <name>.jsonl trajectory + run manifest there
//                        (first-class instrumentation instead of printf
//                        scraping; see DESIGN.md §8)
//   UAE_LOG_LEVEL        debug|info|warn|error (wins over the default
//                        bench quieting)
//   UAE_BENCH_TOLERANCE  allowed slowdown ratio for the regression gate
//                        (default 1.3 = +30%)
//
// Every bench also writes a machine-readable perf baseline
// bench_out/BENCH_<name>.json (wall time, events/sec, peak RSS) from
// Finish(). Passing `--check-against <old BENCH json>` on the command
// line makes Finish() gate the fresh numbers against the old baseline
// and return nonzero on regression (wall up or events/sec down beyond
// tolerance), so CI can catch perf drift: see also `uae_trace --compare`.

#include <sys/resource.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "data/generator.h"

namespace uae::bench {

inline int GetEnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool PaperScale() {
  const char* value = std::getenv("UAE_BENCH_SCALE");
  return value != nullptr && std::string(value) == "paper";
}

/// Seeds per experiment cell (paper: 5; small default 2 keeps the full
/// single-core bench sweep under an hour — raise via UAE_BENCH_SEEDS).
inline int NumSeeds() {
  return GetEnvInt("UAE_BENCH_SEEDS", PaperScale() ? 5 : 2);
}

/// Training epochs for downstream models.
inline int TrainEpochs() { return PaperScale() ? 8 : 6; }

/// Eq. 19 re-weighting parameter used by the table benches. Default is
/// the small-scale validation optimum from fig6_gamma_sweep; override
/// with UAE_BENCH_GAMMA.
inline float Gamma() {
  const char* value = std::getenv("UAE_BENCH_GAMMA");
  return value != nullptr ? static_cast<float>(std::atof(value)) : 0.5f;
}

/// The two evaluation datasets at bench scale.
inline data::GeneratorConfig ProductConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ProductPreset();
  cfg.num_sessions = PaperScale() ? 6000 : 2000;
  return cfg;
}

inline data::GeneratorConfig ThirtyMusicConfig() {
  data::GeneratorConfig cfg = data::GeneratorConfig::ThirtyMusicPreset();
  cfg.num_sessions = PaperScale() ? 5000 : 1600;
  return cfg;
}

/// Fixed dataset seed: tables compare methods on one dataset, seeds vary
/// model training (matching the paper's protocol).
inline constexpr uint64_t kDatasetSeed = 42;

/// Writes a CSV next to the binary outputs and reports the path.
inline void ExportCsv(const CsvWriter& csv, const std::string& name) {
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/" + name + ".csv";
  const Status status = csv.WriteFile(path);
  if (status.ok()) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] export failed: %s\n", status.ToString().c_str());
  }
}

/// Points the process telemetry sink at <dir>/<slug(experiment)>.jsonl
/// when UAE_BENCH_TELEMETRY names a directory. UAE_TELEMETRY_PATH (one
/// explicit file) still works for single-bench runs and wins if the
/// directory flag is unset. A final metrics snapshot is flushed at exit.
inline void MaybeEnableTelemetry(const char* experiment) {
  const char* dir = std::getenv("UAE_BENCH_TELEMETRY");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string slug;
  for (const char* p = experiment; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    slug += std::isalnum(c) ? static_cast<char>(std::tolower(c)) : '_';
  }
  std::filesystem::create_directories(dir);
  const std::string path = std::string(dir) + "/" + slug + ".jsonl";
  if (!telemetry::ConfigureSink(path)) {
    std::printf("[telemetry] cannot open %s\n", path.c_str());
    return;
  }
  std::printf("[telemetry] %s\n", path.c_str());
  std::atexit(+[] { telemetry::EmitMetricsSnapshot("bench_exit"); });
}

namespace internal {

/// Per-process bench bookkeeping between Banner() and Finish().
struct BenchState {
  std::string name;           // Machine slug, e.g. "fig5_convergence".
  std::string check_against;  // Old BENCH_<name>.json to gate against.
  std::chrono::steady_clock::time_point start;
  int64_t events_start = 0;   // Batcher counter values at Banner() time,
  int64_t sessions_start = 0; // so events/sec covers only this bench.
  bool active = false;
  /// Extra (key, raw JSON) pairs spliced into the baseline by Finish().
  std::vector<std::pair<std::string, std::string>> extras;
};

inline BenchState& State() {
  static BenchState state;
  return state;
}

}  // namespace internal

/// Attaches a bench-specific field (pre-rendered JSON: a number, array,
/// or object) to the BENCH_<name>.json baseline Finish() writes — e.g.
/// micro_nn records its thread-count scaling sweep this way.
inline void RecordBaselineExtra(const std::string& key,
                                const std::string& raw_json) {
  internal::State().extras.emplace_back(key, raw_json);
}

/// Allowed slowdown ratio before the perf gate trips.
inline double Tolerance() {
  const char* value = std::getenv("UAE_BENCH_TOLERANCE");
  const double tolerance = value != nullptr ? std::atof(value) : 1.3;
  return tolerance > 0.0 ? tolerance : 1.3;
}

/// Common banner so bench output is self-describing. `name` is the
/// machine slug for the BENCH_<name>.json baseline; argc/argv feed the
/// `--check-against <old baseline>` regression gate (see Finish()).
inline void Banner(int argc, char** argv, const char* name,
                   const char* experiment, const char* description) {
  internal::BenchState& state = internal::State();
  state.name = name;
  state.active = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      state.check_against = argv[++i];
    }
  }
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("scale=%s seeds=%d\n", PaperScale() ? "paper" : "small",
              NumSeeds());
  std::printf("==============================================================\n");
  // Benches quiet the log by default, but an explicit UAE_LOG_LEVEL wins.
  if (!LogLevelFromEnv()) SetLogLevel(LogLevel::kWarning);
  MaybeEnableTelemetry(experiment);
  state.events_start = telemetry::GetCounter("uae.data.batcher.events")->Get();
  state.sessions_start =
      telemetry::GetCounter("uae.data.batcher.sessions")->Get();
  state.start = std::chrono::steady_clock::now();
}

/// Writes bench_out/BENCH_<name>.json and, when --check-against was
/// given, gates against the old baseline. Bench mains end with
/// `return bench::Finish();` — an atexit hook cannot set the exit code.
inline int Finish() {
  internal::BenchState& state = internal::State();
  if (!state.active) return 0;
  state.active = false;

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state.start)
          .count();
  const int64_t events =
      telemetry::GetCounter("uae.data.batcher.events")->Get() -
      state.events_start;
  const int64_t sessions =
      telemetry::GetCounter("uae.data.batcher.sessions")->Get() -
      state.sessions_start;
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  const int64_t peak_rss_bytes = usage.ru_maxrss * 1024;  // Linux: KiB.

  telemetry::JsonObject baseline;
  baseline.Set("bench", state.name)
      .Set("wall_s", wall_s)
      .Set("events", events)
      .Set("sessions", sessions)
      .Set("events_per_sec",
           wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0)
      .Set("peak_rss_bytes", peak_rss_bytes)
      .Set("scale", PaperScale() ? "paper" : "small")
      .Set("seeds", NumSeeds())
      .Set("num_threads", parallel::NumThreads())
      .Set("build", telemetry::BuildVersion());
  for (const auto& [key, raw] : state.extras) baseline.SetRaw(key, raw);

  // UAE_BENCH_VARIANT=<tag> writes BENCH_<name>_<tag>.json so baselines
  // at different configurations (e.g. thread counts) can coexist.
  std::string variant;
  if (const char* tag = std::getenv("UAE_BENCH_VARIANT");
      tag != nullptr && tag[0] != '\0') {
    variant = std::string("_") + tag;
  }
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/BENCH_" + state.name + variant + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::printf("[bench] cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(file, "%s\n", baseline.Str().c_str());
  std::fclose(file);
  std::printf("[bench] %s (wall %.3fs, %.1f events/s, peak RSS %.1f MiB)\n",
              path.c_str(), wall_s,
              wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0,
              static_cast<double>(peak_rss_bytes) / (1024.0 * 1024.0));

  if (state.check_against.empty()) return 0;
  const StatusOr<json::Value> old_baseline =
      json::ParseFile(state.check_against);
  if (!old_baseline.ok()) {
    std::printf("[bench] --check-against: %s\n",
                old_baseline.status().message().c_str());
    return 1;
  }
  const double tolerance = Tolerance();
  const double old_wall = old_baseline.value().GetNumber("wall_s");
  const double old_eps = old_baseline.value().GetNumber("events_per_sec");
  const double new_eps =
      wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  double worst = 0.0;
  if (old_wall > 0.0) worst = std::max(worst, wall_s / old_wall);
  if (new_eps > 0.0 && old_eps > 0.0) {
    worst = std::max(worst, old_eps / new_eps);
  }
  const bool regression = worst > tolerance;
  std::printf("[bench] gate vs %s: wall %.3fs -> %.3fs, worst ratio %.2f "
              "(tolerance %.2f): %s\n",
              state.check_against.c_str(), old_wall, wall_s, worst, tolerance,
              regression ? "REGRESSION" : "ok");
  return regression ? 1 : 0;
}

}  // namespace uae::bench

#endif  // UAE_BENCH_BENCH_COMMON_H_
