// Table V reproduction: the two strongest base models (AutoInt, DCN-V2)
// equipped with each attention/PU baseline (EDM, NDB, PN, SAR) and UAE,
// on both datasets.
//
// Paper shape: +UAE is the best variant for every base model; +PN is far
// below the base model (it discards all passive data); EDM/NDB/SAR land
// near the base model.

#include "bench_common.h"

#include <optional>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "table5_attention_baselines", "Table V", "attention/PU baselines vs UAE");

  const int seeds = bench::NumSeeds();
  const float gamma = bench::Gamma();

  models::ModelConfig model_config;
  models::TrainConfig train_config;
  train_config.epochs = bench::TrainEpochs();

  const std::vector<std::optional<attention::AttentionMethod>> variants = {
      std::nullopt,
      attention::AttentionMethod::kEdm,
      attention::AttentionMethod::kNdb,
      attention::AttentionMethod::kPn,
      attention::AttentionMethod::kSar,
      attention::AttentionMethod::kUae,
  };
  const std::vector<models::ModelKind> base_models = {
      models::ModelKind::kAutoInt, models::ModelKind::kDcnV2};

  CsvWriter csv({"dataset", "base_model", "variant", "auc", "gauc",
                 "auc_relaimpr", "gauc_relaimpr"});
  bool uae_always_best = true;
  bool pn_always_worst = true;

  for (const data::GeneratorConfig& cfg :
       {bench::ProductConfig(), bench::ThirtyMusicConfig()}) {
    const data::Dataset dataset =
        data::GenerateDataset(cfg, bench::kDatasetSeed);
    std::printf("\n=== %s ===\n", dataset.name.c_str());

    // Fit each learned method once per seed; reuse for both base models.
    std::vector<std::vector<core::AttentionArtifacts>> artifacts(
        variants.size());
    for (size_t v = 1; v < variants.size(); ++v) {
      for (int run = 0; run < seeds; ++run) {
        artifacts[v].push_back(core::FitAttention(
            dataset, *variants[v], gamma, 100 + 1000ULL * run));
      }
      std::printf("  [%s fitted, attention MAE %.3f]\n",
                  attention::AttentionMethodName(*variants[v]),
                  artifacts[v].back().alpha_mae);
    }

    for (models::ModelKind kind : base_models) {
      AsciiTable table({"Variant", "AUC", "AUC RelaImpr", "GAUC",
                        "GAUC RelaImpr"});
      core::CellResult base_cell;
      double best_gauc = -1.0, uae_gauc = -1.0;
      double worst_gauc = 2.0, pn_gauc = 2.0;
      for (size_t v = 0; v < variants.size(); ++v) {
        core::CellSpec spec;
        spec.model = kind;
        spec.num_seeds = seeds;
        spec.model_config = model_config;
        spec.train_config = train_config;
        spec.method = variants[v];
        spec.gamma = gamma;

        core::CellResult cell;
        if (!variants[v].has_value()) {
          cell = core::RunCell(dataset, spec);
          base_cell = cell;
        } else {
          std::vector<const data::EventScores*> shared;
          for (const auto& a : artifacts[v]) shared.push_back(&a.weights);
          cell = core::RunCell(dataset, spec, &shared);
        }
        const std::string variant_name =
            variants[v].has_value()
                ? std::string("+") + attention::AttentionMethodName(*variants[v])
                : "Base";
        const core::Comparison auc =
            core::Compare(base_cell.auc_runs, cell.auc_runs);
        const core::Comparison gauc =
            core::Compare(base_cell.gauc_runs, cell.gauc_runs);
        table.AddRow({variant_name, AsciiTable::Fmt(100.0 * cell.auc.mean, 2),
                      AsciiTable::Fmt(auc.relaimpr, 2),
                      AsciiTable::Fmt(100.0 * cell.gauc.mean, 2),
                      AsciiTable::Fmt(gauc.relaimpr, 2)});
        csv.AddRow({dataset.name, models::ModelKindName(kind), variant_name,
                    AsciiTable::Fmt(100.0 * cell.auc.mean, 3),
                    AsciiTable::Fmt(100.0 * cell.gauc.mean, 3),
                    AsciiTable::Fmt(auc.relaimpr, 3),
                    AsciiTable::Fmt(gauc.relaimpr, 3)});
        if (variant_name == "+UAE") uae_gauc = cell.gauc.mean;
        if (variant_name == "+PN") pn_gauc = cell.gauc.mean;
        best_gauc = std::max(best_gauc, cell.gauc.mean);
        worst_gauc = std::min(worst_gauc, cell.gauc.mean);
        std::printf("  [%s %s done]\n", models::ModelKindName(kind),
                    variant_name.c_str());
      }
      std::printf("--- %s on %s ---\n%s", models::ModelKindName(kind),
                  dataset.name.c_str(), table.ToString().c_str());
      uae_always_best &= uae_gauc >= best_gauc - 1e-9;
      pn_always_worst &= pn_gauc <= worst_gauc + 1e-9;
    }
  }
  bench::ExportCsv(csv, "table5_attention_baselines");
  std::printf("\nshape check: UAE best GAUC in every block: %s; PN worst in "
              "every block: %s\n",
              uae_always_best ? "PASS" : "mixed",
              pn_always_worst ? "PASS" : "mixed");
  return bench::Finish();
}
