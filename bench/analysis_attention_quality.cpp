// Analysis beyond the paper: how well does each estimator recover the
// simulator's ground-truth attention? The paper cannot report this
// (footnote 4: real logs have no attention labels); the simulator can.
//
// Reported per estimator: MAE / Pearson correlation vs true alpha (all
// events and passive-only), plus a calibration table for UAE and the
// ground-truth Oracle skyline.

#include "bench_common.h"

#include <memory>

#include "attention/attention_estimator.h"
#include "attention/oracle.h"
#include "common/table.h"
#include "eval/attention_metrics.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "analysis_attention_quality", "Analysis", "attention recovery quality per estimator");

  const data::Dataset dataset =
      data::GenerateDataset(bench::ProductConfig(), bench::kDatasetSeed);

  std::vector<std::unique_ptr<attention::AttentionEstimator>> estimators;
  estimators.push_back(std::make_unique<attention::OracleAttention>());
  for (attention::AttentionMethod method :
       {attention::AttentionMethod::kEdm, attention::AttentionMethod::kNdb,
        attention::AttentionMethod::kPn, attention::AttentionMethod::kSar,
        attention::AttentionMethod::kUae}) {
    estimators.push_back(attention::CreateAttentionEstimator(method, 100));
  }

  AsciiTable table({"estimator", "MAE", "corr", "MAE (passive)",
                    "corr (passive)", "mean a^", "mean a"});
  CsvWriter csv({"estimator", "mae", "corr", "mae_passive", "corr_passive",
                 "mean_pred", "mean_true"});
  data::EventScores uae_alpha(dataset, 0.5f);
  for (const auto& estimator : estimators) {
    estimator->Fit(dataset);
    const data::EventScores alpha = estimator->PredictAttention(dataset);
    if (std::string(estimator->name()) == "UAE") uae_alpha = alpha;
    const eval::AttentionQuality all =
        eval::EvaluateAttentionRecovery(dataset, alpha);
    const eval::AttentionQuality passive = eval::EvaluateAttentionRecovery(
        dataset, alpha, eval::EventFilter::kPassiveOnly);
    table.AddRow({estimator->name(), AsciiTable::Fmt(all.mae, 3),
                  AsciiTable::Fmt(all.correlation, 3),
                  AsciiTable::Fmt(passive.mae, 3),
                  AsciiTable::Fmt(passive.correlation, 3),
                  AsciiTable::Fmt(all.mean_predicted, 3),
                  AsciiTable::Fmt(all.mean_true, 3)});
    csv.AddRow({estimator->name(), AsciiTable::Fmt(all.mae, 4),
                AsciiTable::Fmt(all.correlation, 4),
                AsciiTable::Fmt(passive.mae, 4),
                AsciiTable::Fmt(passive.correlation, 4),
                AsciiTable::Fmt(all.mean_predicted, 4),
                AsciiTable::Fmt(all.mean_true, 4)});
    std::printf("  [%s done]\n", estimator->name());
  }
  std::printf("%s", table.ToString().c_str());
  bench::ExportCsv(csv, "analysis_attention_quality");

  std::printf("\nUAE calibration (reliability) table:\n");
  AsciiTable calib({"bin", "mean a^", "empirical attention rate", "events"});
  for (const eval::CalibrationBin& bin :
       eval::AttentionCalibration(dataset, uae_alpha, 10)) {
    if (bin.count == 0) continue;
    calib.AddRow({AsciiTable::Fmt(bin.lower, 1) + "-" +
                      AsciiTable::Fmt(bin.upper, 1),
                  AsciiTable::Fmt(bin.mean_predicted, 3),
                  AsciiTable::Fmt(bin.mean_true, 3),
                  std::to_string(bin.count)});
  }
  std::printf("%s", calib.ToString().c_str());
  return bench::Finish();
}
