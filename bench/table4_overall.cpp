// Table IV reproduction: all seven base recommendation models trained
// with and without UAE on both datasets; AUC / GAUC (percent), RelaImpr,
// and t-test significance stars over multiple seeds.
//
// Paper shape: +UAE improves every base model on both metrics and both
// datasets, with GAUC RelaImpr larger than AUC RelaImpr on Product.

#include "bench_common.h"

#include <memory>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "table4_overall", "Table IV", "7 base models +/- UAE on both datasets");
  std::printf("gamma=%.2f (override with UAE_BENCH_GAMMA)\n", bench::Gamma());

  const int seeds = bench::NumSeeds();
  const float gamma = bench::Gamma();

  models::ModelConfig model_config;
  models::TrainConfig train_config;
  train_config.epochs = bench::TrainEpochs();

  CsvWriter csv({"dataset", "model", "metric", "base", "uae", "relaimpr",
                 "significant"});
  int improved_cells = 0, total_cells = 0;

  for (const data::GeneratorConfig& cfg :
       {bench::ProductConfig(), bench::ThirtyMusicConfig()}) {
    const data::Dataset dataset =
        data::GenerateDataset(cfg, bench::kDatasetSeed);
    std::printf("\n=== %s (%zu events, %.1f%% active) ===\n",
                dataset.name.c_str(), dataset.TotalEvents(),
                100.0 * dataset.ActiveRate());

    // One UAE fit per seed, shared by all seven base models.
    std::vector<core::AttentionArtifacts> artifacts;
    std::vector<const data::EventScores*> shared_weights;
    for (int run = 0; run < seeds; ++run) {
      const uint64_t seed = 100 + 1000ULL * run;
      artifacts.push_back(core::FitAttention(
          dataset, attention::AttentionMethod::kUae, gamma, seed));
      std::printf("  [uae fit %d/%d] attention MAE %.3f\n", run + 1, seeds,
                  artifacts.back().alpha_mae);
    }
    for (const core::AttentionArtifacts& a : artifacts) {
      shared_weights.push_back(&a.weights);
    }

    AsciiTable table({"Model", "AUC base", "AUC +UAE", "AUC RelaImpr",
                      "GAUC base", "GAUC +UAE", "GAUC RelaImpr"});
    for (models::ModelKind kind : models::AllModelKinds()) {
      core::CellSpec spec;
      spec.model = kind;
      spec.num_seeds = seeds;
      spec.model_config = model_config;
      spec.train_config = train_config;

      spec.method = std::nullopt;
      const core::CellResult base = core::RunCell(dataset, spec);
      spec.method = attention::AttentionMethod::kUae;
      spec.gamma = gamma;
      const core::CellResult treated =
          core::RunCell(dataset, spec, &shared_weights);

      const core::Comparison auc =
          core::Compare(base.auc_runs, treated.auc_runs);
      const core::Comparison gauc =
          core::Compare(base.gauc_runs, treated.gauc_runs);
      table.AddRow({models::ModelKindName(kind),
                    AsciiTable::Fmt(100.0 * auc.base_mean, 2),
                    AsciiTable::FmtStar(100.0 * auc.treated_mean, 2,
                                        auc.significant),
                    AsciiTable::Fmt(auc.relaimpr, 2),
                    AsciiTable::Fmt(100.0 * gauc.base_mean, 2),
                    AsciiTable::FmtStar(100.0 * gauc.treated_mean, 2,
                                        gauc.significant),
                    AsciiTable::Fmt(gauc.relaimpr, 2)});
      csv.AddRow({dataset.name, models::ModelKindName(kind), "AUC",
                  AsciiTable::Fmt(100.0 * auc.base_mean, 3),
                  AsciiTable::Fmt(100.0 * auc.treated_mean, 3),
                  AsciiTable::Fmt(auc.relaimpr, 3),
                  auc.significant ? "1" : "0"});
      csv.AddRow({dataset.name, models::ModelKindName(kind), "GAUC",
                  AsciiTable::Fmt(100.0 * gauc.base_mean, 3),
                  AsciiTable::Fmt(100.0 * gauc.treated_mean, 3),
                  AsciiTable::Fmt(gauc.relaimpr, 3),
                  gauc.significant ? "1" : "0"});
      improved_cells += (auc.relaimpr > 0) + (gauc.relaimpr > 0);
      total_cells += 2;
      std::printf("  [%s done]\n", models::ModelKindName(kind));
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("('*' = improvement significant at p < 0.05, Welch t-test, "
                "%d seeds)\n",
                seeds);
  }
  bench::ExportCsv(csv, "table4_overall");
  std::printf("\nshape check: +UAE improves %d / %d model-metric cells "
              "(paper: all cells improve)\n",
              improved_cells, total_cells);
  return bench::Finish();
}
