// google-benchmark micro-benchmarks of the uae::nn substrate: the op
// throughput that bounds every experiment's wall clock. The main also
// runs a fixed-work thread sweep (matmul + GRU step, forward+backward at
// UAE_NUM_THREADS 1/2/4/8) and records it in the BENCH_micro_nn.json
// baseline, so perf history tracks parallel scaling alongside absolute
// speed; `--check-against <old baseline>` gates on wall-clock drift.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace uae::nn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  NodePtr a = Constant(UniformInit(&rng, n, n, 1.0f));
  NodePtr b = Constant(UniformInit(&rng, n, n, 1.0f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b)->value.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForwardBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(2);
  Mlp mlp(&rng, 112, {64, 32, 1}, Activation::kRelu);
  NodePtr x = Constant(UniformInit(&rng, batch, 112, 1.0f));
  Tensor pos = Tensor::Ones(batch, 1);
  for (auto _ : state) {
    NodePtr loss = WeightedSoftplusSum(mlp.Forward(x), pos, -1.0f);
    Backward(loss);
    benchmark::DoNotOptimize(loss->value.ScalarValue());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(128)->Arg(512);

void BM_GruUnroll(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  constexpr int kBatch = 64;
  Rng rng(3);
  GruCell gru(&rng, 54, 32);
  std::vector<NodePtr> inputs;
  for (int t = 0; t < steps; ++t) {
    inputs.push_back(Constant(UniformInit(&rng, kBatch, 54, 1.0f)));
  }
  for (auto _ : state) {
    std::vector<NodePtr> states = gru.Unroll(inputs);
    NodePtr loss = MeanAll(states.back());
    Backward(loss);
    benchmark::DoNotOptimize(loss->value.ScalarValue());
  }
  state.SetItemsProcessed(state.iterations() * kBatch * steps);
}
BENCHMARK(BM_GruUnroll)->Arg(8)->Arg(24);

void BM_EmbeddingLookup(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(4);
  NodePtr table =
      MakeLeaf(NormalInit(&rng, 4000, 8, 0.05f), /*requires_grad=*/true);
  std::vector<int> indices(batch);
  for (int& i : indices) i = static_cast<int>(rng.UniformInt(4000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmbeddingLookup(table, indices)->value.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EmbeddingLookup)->Arg(512);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(5);
  std::vector<NodePtr> params;
  for (int i = 0; i < 8; ++i) {
    NodePtr p = MakeLeaf(UniformInit(&rng, 128, 64, 0.1f),
                         /*requires_grad=*/true);
    p->EnsureGrad();
    p->grad = UniformInit(&rng, 128, 64, 0.01f);
    params.push_back(p);
  }
  Adam adam(params, 1e-3f);
  for (auto _ : state) {
    adam.Step();
  }
  state.SetItemsProcessed(state.iterations() * 8 * 128 * 64);
}
BENCHMARK(BM_AdamStep);

/// Seconds to run `fn` a fixed number of times — fixed work, not fixed
/// time, so the same computation is timed at every thread count.
template <typename Fn>
double TimeFixedWork(int iterations, const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Times matmul and GRU-step forward+backward at 1/2/4/8 threads and
/// splices the per-count wall times and speedups into the baseline.
void RunThreadSweep() {
  constexpr int kMatMulIters = 40;
  constexpr int kGruIters = 40;
  Rng rng(6);
  NodePtr a = MakeLeaf(UniformInit(&rng, 128, 128, 1.0f),
                       /*requires_grad=*/true);
  NodePtr b = MakeLeaf(UniformInit(&rng, 128, 128, 1.0f),
                       /*requires_grad=*/true);
  GruCell gru(&rng, 54, 32);
  NodePtr x = Constant(UniformInit(&rng, 64, 54, 1.0f));

  const auto matmul_step = [&]() {
    NodePtr loss = MeanAll(MatMul(a, b));
    Backward(loss);
    benchmark::DoNotOptimize(loss->value.ScalarValue());
  };
  const auto gru_step = [&]() {
    NodePtr loss = MeanAll(gru.Step(x, gru.InitialState(64)));
    Backward(loss);
    benchmark::DoNotOptimize(loss->value.ScalarValue());
  };

  const int prev_threads = parallel::NumThreads();
  std::printf("\nthread sweep (fixed work, %d matmul / %d gru iters):\n",
              kMatMulIters, kGruIters);
  std::string sweep = "[";
  double matmul_serial = 0.0;
  double gru_serial = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    parallel::SetNumThreads(threads);
    matmul_step();  // Warm the pool outside the timed region.
    const double matmul_s = TimeFixedWork(kMatMulIters, matmul_step);
    const double gru_s = TimeFixedWork(kGruIters, gru_step);
    if (threads == 1) {
      matmul_serial = matmul_s;
      gru_serial = gru_s;
    }
    const double matmul_speedup = matmul_s > 0.0 ? matmul_serial / matmul_s
                                                 : 0.0;
    const double gru_speedup = gru_s > 0.0 ? gru_serial / gru_s : 0.0;
    std::printf("  threads=%d matmul128 %.4fs (%.2fx)  gru_step %.4fs "
                "(%.2fx)\n",
                threads, matmul_s, matmul_speedup, gru_s, gru_speedup);
    if (sweep.size() > 1) sweep += ',';
    sweep += telemetry::JsonObject()
                 .Set("threads", threads)
                 .Set("matmul128_s", matmul_s)
                 .Set("matmul128_speedup", matmul_speedup)
                 .Set("gru_step_s", gru_s)
                 .Set("gru_step_speedup", gru_speedup)
                 .Str();
  }
  sweep += ']';
  parallel::SetNumThreads(prev_threads);
  bench::RecordBaselineExtra("threads_sweep", sweep);
  bench::RecordBaselineExtra(
      "hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));
}

}  // namespace
}  // namespace uae::nn

int main(int argc, char** argv) {
  uae::bench::Banner(argc, argv, "micro_nn", "micro_nn",
                     "nn substrate micro-benchmarks + thread scaling");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  uae::nn::RunThreadSweep();
  return uae::bench::Finish();
}
