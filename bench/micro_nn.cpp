// google-benchmark micro-benchmarks of the uae::nn substrate: the op
// throughput that bounds every experiment's wall clock.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace uae::nn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  NodePtr a = Constant(UniformInit(&rng, n, n, 1.0f));
  NodePtr b = Constant(UniformInit(&rng, n, n, 1.0f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b)->value.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForwardBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(2);
  Mlp mlp(&rng, 112, {64, 32, 1}, Activation::kRelu);
  NodePtr x = Constant(UniformInit(&rng, batch, 112, 1.0f));
  Tensor pos = Tensor::Ones(batch, 1);
  for (auto _ : state) {
    NodePtr loss = WeightedSoftplusSum(mlp.Forward(x), pos, -1.0f);
    Backward(loss);
    benchmark::DoNotOptimize(loss->value.ScalarValue());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(128)->Arg(512);

void BM_GruUnroll(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  constexpr int kBatch = 64;
  Rng rng(3);
  GruCell gru(&rng, 54, 32);
  std::vector<NodePtr> inputs;
  for (int t = 0; t < steps; ++t) {
    inputs.push_back(Constant(UniformInit(&rng, kBatch, 54, 1.0f)));
  }
  for (auto _ : state) {
    std::vector<NodePtr> states = gru.Unroll(inputs);
    NodePtr loss = MeanAll(states.back());
    Backward(loss);
    benchmark::DoNotOptimize(loss->value.ScalarValue());
  }
  state.SetItemsProcessed(state.iterations() * kBatch * steps);
}
BENCHMARK(BM_GruUnroll)->Arg(8)->Arg(24);

void BM_EmbeddingLookup(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(4);
  NodePtr table =
      MakeLeaf(NormalInit(&rng, 4000, 8, 0.05f), /*requires_grad=*/true);
  std::vector<int> indices(batch);
  for (int& i : indices) i = static_cast<int>(rng.UniformInt(4000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmbeddingLookup(table, indices)->value.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EmbeddingLookup)->Arg(512);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(5);
  std::vector<NodePtr> params;
  for (int i = 0; i < 8; ++i) {
    NodePtr p = MakeLeaf(UniformInit(&rng, 128, 64, 0.1f),
                         /*requires_grad=*/true);
    p->EnsureGrad();
    p->grad = UniformInit(&rng, 128, 64, 0.01f);
    params.push_back(p);
  }
  Adam adam(params, 1e-3f);
  for (auto _ : state) {
    adam.Step();
  }
  state.SetItemsProcessed(state.iterations() * 8 * 128 * 64);
}
BENCHMARK(BM_AdamStep);

}  // namespace
}  // namespace uae::nn

BENCHMARK_MAIN();
