// Figure 3 reproduction: active/passive feedback rates vs. play rank.
// Paper shape: the active rate decreases with rank (users gradually lose
// attention) and passive feedback dominates at every rank.

#include "bench_common.h"

#include "common/table.h"
#include "data/feedback_stats.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "fig3_feedback_rates", "Figure 3", "feedback rates vs. play rank");

  data::GeneratorConfig cfg = bench::ProductConfig();
  cfg.num_sessions *= 2;
  const data::Dataset dataset =
      data::GenerateDataset(cfg, bench::kDatasetSeed);
  const data::FeedbackStats stats =
      data::ComputeFeedbackStats(dataset, 6, cfg.max_session_len);

  AsciiTable table({"rank", "active rate", "passive rate", "support"});
  CsvWriter csv({"rank", "active_rate", "passive_rate", "support"});
  for (size_t t = 0; t < stats.active_rate_by_rank.size(); ++t) {
    if (stats.rank_support[t] == 0) continue;
    table.AddRow({std::to_string(t + 1),
                  AsciiTable::Fmt(stats.active_rate_by_rank[t], 4),
                  AsciiTable::Fmt(stats.passive_rate_by_rank[t], 4),
                  std::to_string(stats.rank_support[t])});
    csv.AddNumericRow({static_cast<double>(t + 1),
                       stats.active_rate_by_rank[t],
                       stats.passive_rate_by_rank[t],
                       static_cast<double>(stats.rank_support[t])});
  }
  std::printf("%s", table.ToString().c_str());
  bench::ExportCsv(csv, "fig3_feedback_rates");

  // Shape checks from the paper's two observations.
  const double early = (stats.active_rate_by_rank[0] +
                        stats.active_rate_by_rank[1] +
                        stats.active_rate_by_rank[2]) /
                       3.0;
  const size_t n = stats.active_rate_by_rank.size();
  const double late = (stats.active_rate_by_rank[n - 3] +
                       stats.active_rate_by_rank[n - 2] +
                       stats.active_rate_by_rank[n - 1]) /
                      3.0;
  bool passive_dominates = true;
  for (size_t t = 0; t < n; ++t) {
    if (stats.rank_support[t] > 0 &&
        stats.passive_rate_by_rank[t] <= stats.active_rate_by_rank[t]) {
      passive_dominates = false;
    }
  }
  std::printf("\nshape check: active rate decays with rank (%.4f -> %.4f): "
              "%s; passive dominates every rank: %s\n",
              early, late, early > late ? "PASS" : "FAIL",
              passive_dominates ? "PASS" : "FAIL");
  const int gate = bench::Finish();
  return (early > late && passive_dominates) ? gate : 1;
}
