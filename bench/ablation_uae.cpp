// Ablations of UAE's design choices (beyond the paper's tables):
//   1. sequential vs. local propensity tower (the paper's core claim)
//   2. non-negative risk clipping on/off
//   3. alternating schedule N_a/N_p
//   4. training length N_e (exposes the scale-drift mode of alternating
//      PU estimation; see DESIGN.md)
//
// Reported per variant: attention MAE vs ground truth, propensity MAE,
// and downstream DCN-V2 AUC/GAUC when using the variant's weights.

#include "bench_common.h"

#include <cmath>
#include <string>

#include "attention/uae_model.h"
#include "common/table.h"
#include "core/pipeline.h"

namespace {

using namespace uae;

double PropensityMae(const data::Dataset& d, const data::EventScores& p) {
  double mae = 0.0;
  int64_t n = 0;
  for (size_t s = 0; s < d.sessions.size(); ++s) {
    for (int t = 0; t < d.sessions[s].length(); ++t) {
      mae += std::fabs(p.at(static_cast<int>(s), t) -
                       d.sessions[s].events[t].true_propensity);
      ++n;
    }
  }
  return mae / n;
}

struct Variant {
  std::string name;
  attention::UaeConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(argc, argv, "ablation_uae", "Ablation", "UAE design choices");

  const data::Dataset dataset =
      data::GenerateDataset(bench::ProductConfig(), bench::kDatasetSeed);
  models::TrainConfig train_config;
  train_config.epochs = bench::TrainEpochs();
  train_config.seed = 100;
  models::ModelConfig model_config;

  attention::UaeConfig base_config;
  base_config.seed = 100;

  std::vector<Variant> variants;
  variants.push_back({"UAE (paper setting)", base_config});
  {
    attention::UaeConfig c = base_config;
    c.sequential_propensity = false;
    variants.push_back({"local propensity (SAR-like)", c});
  }
  {
    attention::UaeConfig c = base_config;
    c.risk_clipping = false;
    variants.push_back({"no risk clipping", c});
  }
  {
    attention::UaeConfig c = base_config;
    c.attention_steps = 2;
    c.propensity_steps = 1;
    variants.push_back({"N_a=2, N_p=1", c});
  }
  {
    attention::UaeConfig c = base_config;
    c.epochs = 2;
    variants.push_back({"N_e=2 (under-trained)", c});
  }
  {
    attention::UaeConfig c = base_config;
    c.epochs = 10;
    variants.push_back({"N_e=10 (drift regime)", c});
  }

  AsciiTable table({"variant", "att MAE", "prop MAE", "AUC", "GAUC"});
  CsvWriter csv({"variant", "attention_mae", "propensity_mae", "auc",
                 "gauc"});
  for (const Variant& variant : variants) {
    attention::Uae uae(variant.config);
    const core::AttentionArtifacts artifacts =
        core::FitAttention(dataset, &uae, /*gamma=*/1.0f);
    const double prop_mae =
        PropensityMae(dataset, uae.PredictPropensity(dataset));
    const core::RunResult run =
        core::TrainModel(dataset, models::ModelKind::kDcnV2,
                         &artifacts.weights, model_config, train_config);
    table.AddRow({variant.name, AsciiTable::Fmt(artifacts.alpha_mae, 3),
                  AsciiTable::Fmt(prop_mae, 3),
                  AsciiTable::Fmt(100 * run.test.auc, 2),
                  AsciiTable::Fmt(100 * run.test.gauc, 2)});
    csv.AddRow({variant.name, AsciiTable::Fmt(artifacts.alpha_mae, 4),
                AsciiTable::Fmt(prop_mae, 4),
                AsciiTable::Fmt(100 * run.test.auc, 3),
                AsciiTable::Fmt(100 * run.test.gauc, 3)});
    std::printf("  [%s done]\n", variant.name.c_str());
  }
  std::printf("%s", table.ToString().c_str());
  bench::ExportCsv(csv, "ablation_uae");
  return bench::Finish();
}
