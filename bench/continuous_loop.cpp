// Continuous-learning loop baseline: the stream → incremental-train →
// publish → swap cycle of DESIGN.md §16 under simulated live traffic.
//
// Three timed legs:
//   1. stream — closed-loop serving with the feedback tap on: every
//      response's playlist is walked by the simulated user and appended
//      to the CRC-framed feedback log (the lock-free writer in the
//      serving path), then a fresh tailer decodes the whole stream.
//   2. cycle — one manual LearnLoop cycle: ingest the log, fine-tune
//      the incumbent, publish the fingerprinted candidate into the
//      health-gated rollout ladder.
//   3. swap — live traffic promotes the candidate canary → ramp → full
//      until the engine serves it; the leg ends at the version flip.
//
// The committed BENCH_continuous_loop.json gates wall time via the
// usual --check-against machinery (UAE_BENCH_TOLERANCE, default 1.3x)
// and records per-leg rates as baseline extras: feedback append and
// ingest decode rates (records/s), the cycle wall, and the
// publish-to-serving promotion wall.

#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/table.h"
#include "data/world.h"
#include "learn/bridge.h"
#include "learn/feedback_log.h"
#include "learn/ingest.h"
#include "learn/learn_loop.h"
#include "models/registry.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/rollout.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "continuous_loop", "Continuous learning loop",
                "stream -> incremental train -> publish -> swap under "
                "live traffic");

  const int requests = bench::PaperScale() ? 2048 : 768;
  const int epochs = bench::PaperScale() ? 4 : 2;

  data::GeneratorConfig world_config = bench::ProductConfig();
  world_config.num_sessions = 300;  // The loop only needs the world.
  const data::World world(world_config, bench::kDatasetSeed);

  std::filesystem::create_directories("bench_out");
  const std::string incumbent_path = "bench_out/loop_incumbent.ckpt";
  const std::string candidate_path = "bench_out/loop_candidate.ckpt";
  const std::string feedback_path = "bench_out/loop_feedback.log";
  std::remove(candidate_path.c_str());
  std::remove(feedback_path.c_str());

  const models::ModelKind kind = models::ModelKind::kLr;
  const models::ModelConfig model_config;
  Rng init_rng(1);
  const std::unique_ptr<models::Recommender> incumbent =
      models::CreateRecommender(kind, &init_rng, world.schema(),
                                model_config);
  if (!serve::SaveRecommender(*incumbent, kind, model_config,
                              incumbent_path)
           .ok()) {
    std::printf("cannot stage incumbent checkpoint\n");
    return 1;
  }
  serve::SnapshotSpec spec;
  spec.schema = world.schema();
  spec.kind = kind;
  spec.model_path = incumbent_path;
  StatusOr<std::shared_ptr<const serve::ModelSnapshot>> snapshot =
      serve::ModelSnapshot::Load(spec);
  if (!snapshot.ok()) {
    std::printf("cannot load incumbent snapshot: %s\n",
                snapshot.status().ToString().c_str());
    return 1;
  }

  serve::EngineConfig engine_config;
  engine_config.max_wait_us = 0;
  engine_config.playlist_length = 10;
  serve::Engine engine(snapshot.value(), engine_config);
  serve::RolloutConfig rollout_config;
  rollout_config.stage_requests = 32;
  rollout_config.health.thresholds.max_latency_ratio = 0.0;
  // The candidate legitimately re-ranks (it fine-tuned on feedback the
  // fresh-init incumbent never saw); the drift gate catching a bad
  // candidate is covered by tests/learn_chaos_test.cc.
  rollout_config.health.thresholds.max_score_drift = 0.0;
  serve::RolloutController rollout(&engine, rollout_config);

  StatusOr<std::unique_ptr<learn::FeedbackLog>> log =
      learn::FeedbackLog::Open({feedback_path});
  if (!log.ok()) {
    std::printf("cannot open feedback log\n");
    return 1;
  }

  Rng traffic_rng(7);
  uint64_t request_id = 0;
  const auto serve_one = [&]() -> bool {
    const int user =
        static_cast<int>(request_id % world.config().num_users);
    const int hour = static_cast<int>(traffic_rng.UniformInt(24));
    const int weekday = static_cast<int>(traffic_rng.UniformInt(7));
    serve::ScoreRequest request;
    request.user = user;
    for (int c = 0; c < 16; ++c) {
      const int song = world.SampleSong(&traffic_rng);
      request.candidate_songs.push_back(song);
      request.candidates.push_back(
          world.ScoringEvent(user, song, hour, weekday));
    }
    StatusOr<serve::ScoreResponse> response =
        rollout.Score(std::move(request));
    if (!response.ok()) return false;
    const data::Session walk = world.SimulateSession(
        user, response.value().playlist, hour, weekday, &traffic_rng);
    learn::AppendWalk(log.value().get(), walk, response.value().playlist,
                      response.value().scores,
                      response.value().snapshot_version, request_id, hour,
                      weekday);
    ++request_id;
    return true;
  };

  // Leg 1: the stream. Closed-loop serving with the feedback tap, then
  // a fresh tailer decoding everything it produced.
  std::printf("leg 1: %d requests with the feedback tap on...\n", requests);
  const auto stream_start = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    if (!serve_one()) {
      std::printf("request %d failed\n", i);
      return 1;
    }
  }
  const double stream_s = Seconds(stream_start);
  const int64_t stream_records = log.value()->records_written();

  const auto ingest_start = std::chrono::steady_clock::now();
  learn::StreamIngester tailer({feedback_path});
  std::vector<learn::FeedbackRecord> decoded;
  if (!tailer.Poll(&decoded).ok() ||
      static_cast<int64_t>(decoded.size()) != stream_records) {
    std::printf("tailer decoded %zu of %lld records\n", decoded.size(),
                static_cast<long long>(stream_records));
    return 1;
  }
  const double ingest_s = Seconds(ingest_start);

  // Leg 2: one ingest → fine-tune → publish cycle.
  learn::LearnLoopConfig loop_config;
  loop_config.ingest.path = feedback_path;
  loop_config.trainer.kind = kind;
  loop_config.trainer.incumbent_path = incumbent_path;
  loop_config.trainer.candidate_path = candidate_path;
  loop_config.trainer.train.epochs = epochs;
  loop_config.trainer.train.batch_size = 64;
  loop_config.publisher.schema = world.schema();
  loop_config.publisher.kind = kind;
  loop_config.min_records = 64;
  learn::LearnLoop loop(&world, &rollout, loop_config);

  std::printf("leg 2: learn cycle (fine-tune %d epochs)...\n", epochs);
  const auto cycle_start = std::chrono::steady_clock::now();
  const StatusOr<learn::CycleReport> cycle =
      loop.RunCycle(learn::CycleTrigger::kManual);
  const double cycle_s = Seconds(cycle_start);
  if (!cycle.ok() || !cycle.value().published) {
    std::printf("cycle did not publish: %s\n",
                cycle.ok() ? cycle.value().skipped_reason.c_str()
                           : cycle.status().ToString().c_str());
    return 1;
  }

  // Leg 3: live traffic rides the candidate canary → ramp → full; the
  // leg ends when the engine serves the candidate version.
  std::printf("leg 3: promoting under live traffic...\n");
  const auto swap_start = std::chrono::steady_clock::now();
  int promote_requests = 0;
  for (int window = 0; window < 8; ++window) {
    if (rollout.stage() == serve::RolloutStage::kIdle ||
        rollout.stage() == serve::RolloutStage::kRolledBack) {
      break;
    }
    for (int i = 0; i < rollout_config.stage_requests; ++i) {
      if (!serve_one()) {
        std::printf("promotion request failed\n");
        return 1;
      }
      ++promote_requests;
    }
  }
  const double swap_s = Seconds(swap_start);
  const bool promoted =
      rollout.stage() == serve::RolloutStage::kIdle &&
      rollout.rollbacks() == 0 &&
      engine.snapshot()->version() == cycle.value().candidate_version;

  const double append_rate =
      stream_s > 0.0 ? static_cast<double>(stream_records) / stream_s : 0.0;
  const double ingest_rate =
      ingest_s > 0.0 ? static_cast<double>(stream_records) / ingest_s : 0.0;

  AsciiTable table({"metric", "value"});
  table.AddRow({"serve+append (s)", AsciiTable::Fmt(stream_s, 3)});
  table.AddRow({"feedback records",
                AsciiTable::Fmt(double(stream_records), 0)});
  table.AddRow({"append rate (rec/s)", AsciiTable::Fmt(append_rate, 0)});
  table.AddRow({"ingest decode (s)", AsciiTable::Fmt(ingest_s, 4)});
  table.AddRow({"ingest rate (rec/s)", AsciiTable::Fmt(ingest_rate, 0)});
  table.AddRow({"cycle wall (s)", AsciiTable::Fmt(cycle_s, 3)});
  table.AddRow({"records trained",
                AsciiTable::Fmt(double(cycle.value().records), 0)});
  table.AddRow({"valid AUC",
                AsciiTable::Fmt(cycle.value().train.best_valid_auc, 4)});
  table.AddRow({"promotion wall (s)", AsciiTable::Fmt(swap_s, 3)});
  table.AddRow({"promotion requests",
                AsciiTable::Fmt(double(promote_requests), 0)});
  table.AddRow({"rollbacks",
                AsciiTable::Fmt(double(rollout.rollbacks()), 0)});
  table.AddRow({"promoted", promoted ? "yes" : "NO"});
  std::printf("%s", table.ToString().c_str());

  CsvWriter csv({"metric", "value"});
  csv.AddRow({"stream_seconds", AsciiTable::Fmt(stream_s, 4)});
  csv.AddRow({"feedback_records",
              AsciiTable::Fmt(double(stream_records), 0)});
  csv.AddRow({"append_rate", AsciiTable::Fmt(append_rate, 1)});
  csv.AddRow({"ingest_seconds", AsciiTable::Fmt(ingest_s, 5)});
  csv.AddRow({"ingest_rate", AsciiTable::Fmt(ingest_rate, 1)});
  csv.AddRow({"cycle_seconds", AsciiTable::Fmt(cycle_s, 4)});
  csv.AddRow({"records_trained",
              AsciiTable::Fmt(double(cycle.value().records), 0)});
  csv.AddRow({"swap_seconds", AsciiTable::Fmt(swap_s, 4)});
  csv.AddRow({"promote_requests",
              AsciiTable::Fmt(double(promote_requests), 0)});
  csv.AddRow({"rollbacks", AsciiTable::Fmt(double(rollout.rollbacks()), 0)});
  bench::ExportCsv(csv, "continuous_loop");

  bench::RecordBaselineExtra("loop_append_rate",
                             telemetry::JsonNumber(append_rate));
  bench::RecordBaselineExtra("loop_ingest_rate",
                             telemetry::JsonNumber(ingest_rate));
  bench::RecordBaselineExtra("loop_cycle_wall_s",
                             telemetry::JsonNumber(cycle_s));
  bench::RecordBaselineExtra(
      "loop_records_trained",
      telemetry::JsonNumber(static_cast<double>(cycle.value().records)));
  bench::RecordBaselineExtra("loop_swap_wall_s",
                             telemetry::JsonNumber(swap_s));
  bench::RecordBaselineExtra(
      "loop_rollbacks",
      telemetry::JsonNumber(static_cast<double>(rollout.rollbacks())));

  // Shape checks: the stream round-trips losslessly, the cycle
  // publishes, and the candidate is live with zero rollbacks.
  const bool stream_ok =
      log.value()->dropped() == 0 && tailer.bad_frames() == 0;
  std::printf("\nshape check: stream lossless (0 drops, 0 bad frames): "
              "%s\n",
              stream_ok ? "PASS" : "FAIL");
  std::printf("shape check: cycle published a candidate: PASS\n");
  std::printf("shape check: candidate promoted, zero rollbacks: %s\n",
              promoted ? "PASS" : "FAIL");
  const int finish = bench::Finish();
  return (stream_ok && promoted) ? finish : 1;
}
