// Figure 5 reproduction: train/validation AUC of DCN-V2 with and without
// UAE as a function of the training epoch, averaged over multiple seeds
// with 95% confidence intervals.
//
// Paper shape: the +UAE curves converge to a higher asymptote with a
// tighter confidence band on both the training and validation sets.

#include "bench_common.h"

#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "fig5_convergence", "Figure 5", "convergence curves of DCN-V2 +/- UAE");

  const int runs = bench::PaperScale() ? 10 : 4;
  const int epochs = bench::PaperScale() ? 20 : 10;

  const data::Dataset dataset =
      data::GenerateDataset(bench::ProductConfig(), bench::kDatasetSeed);

  models::ModelConfig model_config;
  models::TrainConfig train_config;
  train_config.epochs = epochs;
  train_config.restore_best = false;  // We want the raw curves.

  // curves[variant][epoch] = AUC samples over runs.
  std::vector<std::vector<std::vector<double>>> train_curves(
      2, std::vector<std::vector<double>>(epochs));
  auto valid_curves = train_curves;

  for (int run = 0; run < runs; ++run) {
    const uint64_t seed = 100 + 1000ULL * run;
    train_config.seed = seed;

    const core::RunResult base = core::TrainModel(
        dataset, models::ModelKind::kDcnV2, nullptr, model_config,
        train_config);
    const core::AttentionArtifacts attention = core::FitAttention(
        dataset, attention::AttentionMethod::kUae, 0.5f, seed);
    const core::RunResult treated = core::TrainModel(
        dataset, models::ModelKind::kDcnV2, &attention.weights, model_config,
        train_config);

    for (int e = 0; e < epochs; ++e) {
      train_curves[0][e].push_back(base.curves.train_auc_per_epoch[e]);
      valid_curves[0][e].push_back(base.curves.valid_auc_per_epoch[e]);
      train_curves[1][e].push_back(treated.curves.train_auc_per_epoch[e]);
      valid_curves[1][e].push_back(treated.curves.valid_auc_per_epoch[e]);
    }
    std::printf("  [run %d/%d done]\n", run + 1, runs);
  }

  AsciiTable table({"epoch", "train base", "ci", "train +UAE", "ci",
                    "valid base", "ci", "valid +UAE", "ci"});
  CsvWriter csv({"epoch", "train_base", "train_base_ci", "train_uae",
                 "train_uae_ci", "valid_base", "valid_base_ci", "valid_uae",
                 "valid_uae_ci"});
  for (int e = 0; e < epochs; ++e) {
    const SampleSummary tb = Summarize(train_curves[0][e]);
    const SampleSummary tu = Summarize(train_curves[1][e]);
    const SampleSummary vb = Summarize(valid_curves[0][e]);
    const SampleSummary vu = Summarize(valid_curves[1][e]);
    table.AddRow({std::to_string(e + 1), AsciiTable::Fmt(100 * tb.mean, 2),
                  AsciiTable::Fmt(100 * tb.ci95_half, 2),
                  AsciiTable::Fmt(100 * tu.mean, 2),
                  AsciiTable::Fmt(100 * tu.ci95_half, 2),
                  AsciiTable::Fmt(100 * vb.mean, 2),
                  AsciiTable::Fmt(100 * vb.ci95_half, 2),
                  AsciiTable::Fmt(100 * vu.mean, 2),
                  AsciiTable::Fmt(100 * vu.ci95_half, 2)});
    csv.AddNumericRow({static_cast<double>(e + 1), tb.mean, tb.ci95_half,
                       tu.mean, tu.ci95_half, vb.mean, vb.ci95_half, vu.mean,
                       vu.ci95_half});
  }
  std::printf("%s", table.ToString().c_str());
  bench::ExportCsv(csv, "fig5_convergence");

  // On the small simulator the models overfit after a few epochs (the
  // paper's production-scale curves never reach that regime), so the
  // comparable anchor is the peak validation AUC — the epoch the tables'
  // restore_best model selection picks.
  double peak_base = 0.0, peak_uae = 0.0;
  for (int e = 0; e < epochs; ++e) {
    peak_base = std::max(peak_base, Summarize(valid_curves[0][e]).mean);
    peak_uae = std::max(peak_uae, Summarize(valid_curves[1][e]).mean);
  }
  std::printf("\nshape check: peak valid AUC +UAE %.4f vs base %.4f: %s\n",
              peak_uae, peak_base, peak_uae >= peak_base ? "PASS" : "mixed");
  return bench::Finish();
}
