// Table III reproduction: statistics of the two experimental datasets.
// The paper reports #Sessions / #Users / #Songs / #Features / #Feedback
// types for 30-Music and the Huawei Product log; we print the same
// columns for the simulator presets plus the active-feedback share that
// motivates the whole problem.

#include "bench_common.h"

#include <set>

#include "common/table.h"

namespace {

/// Users/songs actually appearing in the generated log (the configured
/// vocabulary is an upper bound, as in any real log).
std::pair<size_t, size_t> DistinctUsersSongs(const uae::data::Dataset& d) {
  const int song_field = d.schema.SparseFieldIndex("song_id");
  std::set<int> users, songs;
  for (const auto& session : d.sessions) {
    users.insert(session.user);
    for (const auto& event : session.events) {
      songs.insert(event.sparse[song_field]);
    }
  }
  return {users.size(), songs.size()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uae;
  bench::Banner(argc, argv, "table3_dataset_stats", "Table III", "dataset statistics");

  AsciiTable table({"Dataset", "#Sessions", "#Events", "#Users", "#Songs",
                    "#Features", "#Feedback Types", "Active %"});
  CsvWriter csv({"dataset", "sessions", "events", "users", "songs",
                 "features", "feedback_types", "active_pct"});

  for (const data::GeneratorConfig& cfg :
       {bench::ProductConfig(), bench::ThirtyMusicConfig()}) {
    const data::Dataset d = data::GenerateDataset(cfg, bench::kDatasetSeed);
    const auto [users, songs] = DistinctUsersSongs(d);
    table.AddRow({d.name, std::to_string(d.sessions.size()),
                  std::to_string(d.TotalEvents()), std::to_string(users),
                  std::to_string(songs),
                  std::to_string(d.schema.num_features()),
                  std::to_string(d.num_feedback_types),
                  AsciiTable::Fmt(100.0 * d.ActiveRate(), 2)});
    csv.AddRow({d.name, std::to_string(d.sessions.size()),
                std::to_string(d.TotalEvents()), std::to_string(users),
                std::to_string(songs),
                std::to_string(d.schema.num_features()),
                std::to_string(d.num_feedback_types),
                AsciiTable::Fmt(100.0 * d.ActiveRate(), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("paper reference: 30-Music 455K sessions / 5.5K users / 1.99M "
              "songs / 12 features / 3 types;\n"
              "                 Product 8.47M sessions / 3.75M users / 1.73M "
              "songs / 44 features / 6 types.\n"
              "(simulator presets keep the *relative* structure at bench "
              "scale; see DESIGN.md)\n");
  bench::ExportCsv(csv, "table3_dataset_stats");
  return bench::Finish();
}
